package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/line").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions all files of this loader.
	Fset *token.FileSet
	// Files are the parsed sources, comments included. In-package
	// _test.go files are linted too; external (package foo_test) test
	// files are excluded because they form a separate compilation unit.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
	// Deterministic is set when any file of the package carries a
	// //maldlint:deterministic annotation comment: the package promises
	// run-to-run reproducible state and output, and the detpath check
	// enforces it.
	Deterministic bool
}

// deterministicDirective is the package-level annotation that opts a
// package into the detpath determinism contract (see DESIGN.md).
const deterministicDirective = "maldlint:deterministic"

// Loader parses and type-checks packages of one module. Module-internal
// imports are resolved recursively from source; standard-library imports
// are satisfied by the go/importer source importer (still stdlib-only —
// no external tooling). Loaded packages are memoized behind a per-path
// sync.Once, so a whole-module walk type-checks each package exactly
// once even when LoadAll fans packages out across goroutines: a package
// reached both as a root and as a dependency of a concurrently loading
// root is checked by whichever goroutine gets there first, and everyone
// else blocks on the memoized result. Go's import-cycle ban is what
// makes the blocking deadlock-free.
type Loader struct {
	Fset *token.FileSet
	// ModRoot is the filesystem root of the module (directory holding
	// go.mod); ModPath is its module path.
	ModRoot string
	ModPath string
	// Tags lists extra build tags treated as satisfied, on top of the
	// default GOOS/GOARCH/gc set — the loader-side equivalent of
	// `go build -tags`. A second loader with Tags={"race"} analyzes the
	// race half of tag-paired files (internal/line's hogwild split).
	Tags []string

	std   types.ImporterFrom
	stdMu sync.Mutex // the source importer is not safe for concurrent use

	mu      sync.Mutex
	pkgs    map[string]*pkgEntry
	checked map[string]int // type-check invocations per path (test hook)
}

// pkgEntry memoizes one package load behind a Once.
type pkgEntry struct {
	once sync.Once
	pkg  *Package
	err  error
}

// NewLoader returns a loader rooted at the module containing dir, with
// no extra build tags. It locates go.mod by walking upward and reads
// the module path from it.
func NewLoader(dir string) (*Loader, error) {
	return NewLoaderTags(dir, nil)
}

// NewLoaderTags is NewLoader with extra build tags treated as satisfied
// (the `go build -tags` equivalent; see Loader.Tags).
func NewLoaderTags(dir string, tags []string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %w", dir, err)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		Tags:    tags,
		std:     std,
		pkgs:    make(map[string]*pkgEntry),
		checked: make(map[string]int),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// Walk returns the import paths of every package directory under the
// module root, skipping testdata, hidden directories, and directories
// with no Go files. The result is sorted.
func (l *Loader) Walk() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if hasGo {
			rel, err := filepath.Rel(l.ModRoot, path)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.ModPath)
			} else {
				paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking module: %w", err)
	}
	sort.Strings(paths)
	return paths, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// GatedPackages returns the import paths of module packages that
// contain at least one Go file whose build constraints evaluate
// differently with tag enabled than under this loader's current tag
// set — the packages a second analysis pass under that tag would see
// differently. The result is sorted.
func (l *Loader) GatedPackages(tag string) ([]string, error) {
	paths, err := l.Walk()
	if err != nil {
		return nil, err
	}
	withTag := func(t string) bool { return t == tag || l.tagSatisfied(t) }
	var out []string
	for _, path := range paths {
		dir := l.dirForPath(path)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
		}
		gated := false
		for _, e := range entries {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
				continue
			}
			expr, err := fileConstraint(filepath.Join(dir, n))
			if err != nil {
				return nil, err
			}
			if expr != nil && expr.Eval(l.tagSatisfied) != expr.Eval(withTag) {
				gated = true
				break
			}
		}
		if gated {
			out = append(out, path)
		}
	}
	return out, nil
}

// fileConstraint returns the //go:build (or // +build) constraint of a
// source file, or nil when it has none. Only the header before the
// package clause is scanned, without a full parse.
func fileConstraint(path string) (constraint.Expr, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if constraint.IsGoBuild(trimmed) || constraint.IsPlusBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				continue
			}
			return expr, nil
		}
	}
	return nil, nil
}

// dirForPath maps a module import path to its source directory.
func (l *Loader) dirForPath(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// entry returns the memo cell for path, creating it if needed.
func (l *Loader) entry(path string) *pkgEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.pkgs[path]
	if !ok {
		e = &pkgEntry{}
		l.pkgs[path] = e
	}
	return e
}

// TypeCheckCount reports how many times the package at path has been
// handed to the type checker — 1 after any number of loads, which the
// engine tests assert.
func (l *Loader) TypeCheckCount(path string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checked[path]
}

// Load parses and type-checks the package with the given import path,
// which must belong to this loader's module. Concurrent calls are safe;
// each package is type-checked at most once.
func (l *Loader) Load(path string) (*Package, error) {
	rel, ok := strings.CutPrefix(path, l.ModPath)
	if !ok {
		return nil, fmt.Errorf("lint: %s is outside module %s", path, l.ModPath)
	}
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	return l.LoadDir(dir, path)
}

// LoadAll loads many packages, parsing and type-checking independent
// packages in parallel while shared dependencies are still checked
// exactly once (see Loader). Results and errors are returned in input
// order, so the output is deterministic regardless of goroutine
// scheduling; errs[i] is nil exactly when pkgs[i] is usable.
func (l *Loader) LoadAll(paths []string) (pkgs []*Package, errs []error) {
	pkgs = make([]*Package, len(paths))
	errs = make([]error, len(paths))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, path := range paths {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pkgs[i], errs[i] = l.Load(path)
		}(i, path)
	}
	wg.Wait()
	return pkgs, errs
}

// LoadDir parses and type-checks the package in dir under the given
// import path. It is the entry point fixture tests use to check
// directories outside the module layout.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	e := l.entry(path)
	e.once.Do(func() {
		e.pkg, e.err = l.loadDirUncached(dir, path)
	})
	return e.pkg, e.err
}

// loadDirUncached performs the actual parse + type-check for LoadDir.
func (l *Loader) loadDirUncached(dir, path string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
	}
	l.mu.Lock()
	l.checked[path]++
	l.mu.Unlock()
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:          path,
		Dir:           dir,
		Fset:          l.Fset,
		Files:         files,
		Types:         tpkg,
		Info:          info,
		Deterministic: hasDeterministicDirective(files),
	}, nil
}

// hasDeterministicDirective reports whether any comment of any file is
// a //maldlint:deterministic annotation.
func hasDeterministicDirective(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == deterministicDirective || strings.HasPrefix(text, deterministicDirective+" ") {
					return true
				}
			}
		}
	}
	return false
}

// parseDir parses the buildable Go files of dir: regular sources plus
// in-package _test.go files. External test packages (package foo_test)
// are skipped — they would need the package under test as an import of
// themselves and form a separate unit.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		full := filepath.Join(dir, n)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", full, err)
		}
		if !l.buildable(f) {
			// Excluded by a //go:build constraint under this loader's tag
			// set (e.g. the !race half of a race/norace pair): parsing
			// both halves would redeclare their symbols.
			continue
		}
		name := f.Name.Name
		if strings.HasSuffix(n, "_test.go") {
			// Keep in-package test files, skip external test packages.
			if strings.HasSuffix(name, "_test") {
				continue
			}
		}
		if pkgName == "" {
			pkgName = name
		}
		if name != pkgName {
			// Mixed non-test package clauses; keep the majority package
			// (the first seen) and ignore strays rather than failing.
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// buildable reports whether f is included under this loader's build
// configuration: current GOOS/GOARCH, gc, the loader's extra Tags, and
// nothing else. Files gated on instrumentation or tool tags (race,
// msan, ignore, …) are excluded unless the tag was requested, so the
// loader never sees both halves of a tag-paired declaration.
func (l *Loader) buildable(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(l.tagSatisfied) {
				return false
			}
		}
	}
	return true
}

// tagSatisfied is the build-tag truth function for buildable: the host
// platform and compiler are on, Go release tags are assumed satisfied
// by the current toolchain, the loader's extra Tags are on, and
// everything else (race, msan, custom tags) is off.
func (l *Loader) tagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	for _, t := range l.Tags {
		if tag == t {
			return true
		}
	}
	return strings.HasPrefix(tag, "go1.")
}

// moduleImporter resolves module-internal imports from source and
// delegates everything else to the standard-library source importer.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.l.ModPath || strings.HasPrefix(path, m.l.ModPath+"/") {
		pkg, err := m.l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	m.l.stdMu.Lock()
	defer m.l.stdMu.Unlock()
	return m.l.std.Import(path)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/line").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions all files of this loader.
	Fset *token.FileSet
	// Files are the parsed sources, comments included. In-package
	// _test.go files are linted too; external (package foo_test) test
	// files are excluded because they form a separate compilation unit.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module. Module-internal
// imports are resolved recursively from source; standard-library imports
// are satisfied by the go/importer source importer (still stdlib-only —
// no external tooling). Loaded packages are memoized, so a whole-module
// walk type-checks each package once.
type Loader struct {
	Fset *token.FileSet
	// ModRoot is the filesystem root of the module (directory holding
	// go.mod); ModPath is its module path.
	ModRoot string
	ModPath string

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at the module containing dir. It
// locates go.mod by walking upward and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %w", dir, err)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     std,
		pkgs:    make(map[string]*Package),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// Walk returns the import paths of every package directory under the
// module root, skipping testdata, hidden directories, and directories
// with no Go files. The result is sorted.
func (l *Loader) Walk() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if hasGo {
			rel, err := filepath.Rel(l.ModRoot, path)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.ModPath)
			} else {
				paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking module: %w", err)
	}
	sort.Strings(paths)
	return paths, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// Load parses and type-checks the package with the given import path,
// which must belong to this loader's module.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel, ok := strings.CutPrefix(path, l.ModPath)
	if !ok {
		return nil, fmt.Errorf("lint: %s is outside module %s", path, l.ModPath)
	}
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. It is the entry point fixture tests use to check
// directories outside the module layout.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the buildable Go files of dir: regular sources plus
// in-package _test.go files. External test packages (package foo_test)
// are skipped — they would need the package under test as an import of
// themselves and form a separate unit.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		full := filepath.Join(dir, n)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", full, err)
		}
		if !buildable(f) {
			// Excluded by a //go:build constraint under the default tag
			// set (e.g. the !race half of a race/norace pair): parsing
			// both halves would redeclare their symbols.
			continue
		}
		name := f.Name.Name
		if strings.HasSuffix(n, "_test.go") {
			// Keep in-package test files, skip external test packages.
			if strings.HasSuffix(name, "_test") {
				continue
			}
		}
		if pkgName == "" {
			pkgName = name
		}
		if name != pkgName {
			// Mixed non-test package clauses; keep the majority package
			// (the first seen) and ignore strays rather than failing.
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// buildable reports whether f is included under the default build
// configuration: current GOOS/GOARCH, gc, no extra tags. Files gated on
// instrumentation or tool tags (race, msan, ignore, …) are excluded so
// the loader never sees both halves of a tag-paired declaration.
func buildable(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(defaultTag) {
				return false
			}
		}
	}
	return true
}

// defaultTag is the build-tag truth function for buildable: the host
// platform and compiler are on, Go release tags are assumed satisfied
// by the current toolchain, and everything else (race, msan, custom
// tags) is off.
func defaultTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// moduleImporter resolves module-internal imports from source and
// delegates everything else to the standard-library source importer.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.l.ModPath || strings.HasPrefix(path, m.l.ModPath+"/") {
		pkg, err := m.l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.l.std.Import(path)
}

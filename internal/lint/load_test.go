package lint

import (
	"fmt"
	"sort"
	"testing"
)

// fastPaths is a small dependency-linked package subset used by the
// engine tests: etld imports nothing internal, crcio nothing, and
// lint itself pulls neither — loading them exercises the cache without
// type-checking the whole module.
var fastPaths = []string{
	"repro/internal/etld",
	"repro/internal/crcio",
	"repro/internal/mathx",
}

// TestTypeCheckOnce proves the package cache: any number of Load and
// LoadAll calls hand each package to the type checker exactly once.
func TestTypeCheckOnce(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, errs := loader.LoadAll(fastPaths); firstErr(errs) != nil {
		t.Fatalf("LoadAll: %v", firstErr(errs))
	}
	// Load again, both in bulk and singly: all hits.
	if _, errs := loader.LoadAll(fastPaths); firstErr(errs) != nil {
		t.Fatalf("second LoadAll: %v", firstErr(errs))
	}
	for _, p := range fastPaths {
		if _, err := loader.Load(p); err != nil {
			t.Fatalf("Load(%s): %v", p, err)
		}
	}
	for _, p := range fastPaths {
		if got := loader.TypeCheckCount(p); got != 1 {
			t.Errorf("TypeCheckCount(%s) = %d, want 1", p, got)
		}
	}
}

// TestTypeCheckOnceAsDependency loads a package that imports another
// module package and then loads the dependency directly: still one
// type-check for the dependency.
func TestTypeCheckOnceAsDependency(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	// internal/lint imports nothing internal; internal/core imports
	// several module packages — use the walker to find one real edge
	// rather than hard-coding the import graph.
	if _, err := loader.Load("repro/internal/core"); err != nil {
		t.Fatalf("Load(core): %v", err)
	}
	deps := 0
	loader.mu.Lock()
	for path, n := range loader.checked {
		if n != 1 {
			t.Errorf("TypeCheckCount(%s) = %d, want 1", path, n)
		}
		deps++
	}
	loader.mu.Unlock()
	if deps < 2 {
		t.Fatalf("loading core type-checked %d package(s); expected its module dependencies to load through the cache too", deps)
	}
	// Re-loading any already-checked dependency must be a cache hit.
	loader.mu.Lock()
	var some []string
	for path := range loader.checked {
		some = append(some, path)
	}
	loader.mu.Unlock()
	sort.Strings(some)
	for _, path := range some {
		if _, err := loader.Load(path); err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if got := loader.TypeCheckCount(path); got != 1 {
			t.Errorf("after re-load, TypeCheckCount(%s) = %d, want 1", path, got)
		}
	}
}

// TestLoadAllDeterministicOrder runs the same parallel load + lint on
// two fresh loaders and requires byte-identical diagnostic streams:
// result order must not depend on goroutine scheduling.
func TestLoadAllDeterministicOrder(t *testing.T) {
	render := func() []string {
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		pkgs, errs := loader.LoadAll(fastPaths)
		if err := firstErr(errs); err != nil {
			t.Fatalf("LoadAll: %v", err)
		}
		runner := NewRunner()
		var out []string
		for i, pkg := range pkgs {
			out = append(out, "## "+fastPaths[i])
			for _, d := range runner.Run(pkg) {
				out = append(out, d.String())
			}
		}
		return out
	}
	a, b := render(), render()
	if !equalStrings(a, b) {
		t.Errorf("two identical parallel runs disagree:\n run1: %v\n run2: %v", a, b)
	}
}

// TestLoadAllErrorsPositional verifies errs[i] lines up with paths[i].
func TestLoadAllErrorsPositional(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths := []string{"repro/internal/etld", "repro/internal/nosuchpkg"}
	pkgs, errs := loader.LoadAll(paths)
	if errs[0] != nil || pkgs[0] == nil {
		t.Errorf("etld should load: err=%v", errs[0])
	}
	if errs[1] == nil || pkgs[1] != nil {
		t.Errorf("nosuchpkg should fail: pkg=%v err=%v", pkgs[1], errs[1])
	}
}

// TestGatedPackagesRace verifies the loader sees the race/norace split
// in internal/line and nothing spurious elsewhere.
func TestGatedPackagesRace(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	gated, err := loader.GatedPackages("race")
	if err != nil {
		t.Fatalf("GatedPackages: %v", err)
	}
	found := false
	for _, p := range gated {
		if p == "repro/internal/line" {
			found = true
		}
	}
	if !found {
		t.Errorf("GatedPackages(race) = %v; want it to include repro/internal/line (hogwild split)", gated)
	}
	// A loader already carrying the tag sees no difference.
	raceLoader, err := NewLoaderTags(".", []string{"race"})
	if err != nil {
		t.Fatalf("NewLoaderTags: %v", err)
	}
	regated, err := raceLoader.GatedPackages("race")
	if err != nil {
		t.Fatalf("GatedPackages(race loader): %v", err)
	}
	if len(regated) != 0 {
		t.Errorf("race-tagged loader still reports gated packages: %v", regated)
	}
}

// TestTagLoaderSelectsRaceHalf loads internal/line under both tag sets
// and checks that exactly one half of the tag pair is in each.
func TestTagLoaderSelectsRaceHalf(t *testing.T) {
	has := func(tags []string, suffix string) bool {
		loader, err := NewLoaderTags(".", tags)
		if err != nil {
			t.Fatalf("NewLoaderTags(%v): %v", tags, err)
		}
		pkg, err := loader.Load("repro/internal/line")
		if err != nil {
			t.Fatalf("Load(line) tags=%v: %v", tags, err)
		}
		for _, f := range pkg.Files {
			name := loader.Fset.Position(f.Pos()).Filename
			if len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix {
				return true
			}
		}
		return false
	}
	if !has(nil, "matrix_norace.go") || has(nil, "matrix_race.go") {
		t.Errorf("default tags: want norace half only")
	}
	if !has([]string{"race"}, "matrix_race.go") || has([]string{"race"}, "matrix_norace.go") {
		t.Errorf("race tags: want race half only")
	}
}

func firstErr(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("[%d]: %w", i, err)
		}
	}
	return nil
}

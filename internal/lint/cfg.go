package lint

// A lightweight intra-procedural control-flow graph for checks that
// need "on all paths" reasoning (closeleak). One node per statement;
// edges connect each statement to its possible successors. The builder
// handles the structured control flow this repository actually uses —
// if/else, for, range, switch, type switch, select, labeled
// break/continue, return, and terminating calls (panic, os.Exit,
// log.Fatal*, testing Fatal*) — and stays deliberately conservative
// elsewhere: a construct it does not model (goto) routes to the
// function exit, which makes analyses built on it report fewer, not
// wrong, findings.

import (
	"go/ast"
	"go/types"
)

// cfgNode is one statement in the graph. The synthetic entry and exit
// nodes carry a nil Stmt.
type cfgNode struct {
	Stmt ast.Stmt
	Succ []*cfgNode
	// IsReturn marks an explicit return statement (its successor is the
	// exit node).
	IsReturn bool
	// Terminates marks a statement that stops the goroutine without
	// returning normally: panic, os.Exit, log.Fatal, t.Fatal. Such nodes
	// have no successors and do not reach the exit.
	Terminates bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	Entry *cfgNode
	Exit  *cfgNode
	Nodes []*cfgNode
	// byStmt finds the node of a statement, for analyses that locate a
	// statement of interest syntactically first.
	byStmt map[ast.Stmt]*cfgNode
}

// cfgBuilder threads break/continue targets and the exit node through
// the recursive construction.
type cfgBuilder struct {
	g    *funcCFG
	info *types.Info
	// label targets for labeled break/continue.
	labelBreak    map[string]*cfgNode
	labelContinue map[string]*cfgNode
	// pendingLabel names the label wrapping the statement currently
	// being wired (set by LabeledStmt, consumed by withLabel).
	pendingLabel string
}

// buildCFG constructs the graph for a function body. info may be nil;
// it is only used to resolve terminating calls more precisely.
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	g := &funcCFG{
		Entry:  &cfgNode{},
		Exit:   &cfgNode{},
		byStmt: make(map[ast.Stmt]*cfgNode),
	}
	b := &cfgBuilder{
		g:             g,
		info:          info,
		labelBreak:    make(map[string]*cfgNode),
		labelContinue: make(map[string]*cfgNode),
	}
	entry := b.block(body.List, g.Exit, nil, nil)
	g.Entry.Succ = []*cfgNode{entry}
	return g
}

// node allocates and registers a statement node.
func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	if s != nil {
		b.g.byStmt[s] = n
	}
	return n
}

// block wires a statement list; next is where control flows after the
// last statement, brk/cont are the innermost loop/switch targets (nil
// outside them). It returns the entry node of the sequence (next when
// the list is empty).
func (b *cfgBuilder) block(stmts []ast.Stmt, next, brk, cont *cfgNode) *cfgNode {
	// Build back to front so each statement knows its successor.
	for i := len(stmts) - 1; i >= 0; i-- {
		next = b.stmt(stmts[i], next, brk, cont)
	}
	return next
}

// stmt wires one statement and returns its entry node.
func (b *cfgBuilder) stmt(s ast.Stmt, next, brk, cont *cfgNode) *cfgNode {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return b.block(x.List, next, brk, cont)

	case *ast.IfStmt:
		n := b.node(s)
		thenEntry := b.block(x.Body.List, next, brk, cont)
		elseEntry := next
		if x.Else != nil {
			elseEntry = b.stmt(x.Else, next, brk, cont)
		}
		n.Succ = []*cfgNode{thenEntry, elseEntry}
		if x.Init != nil {
			return b.stmt(x.Init, n, brk, cont)
		}
		return n

	case *ast.ForStmt:
		header := b.node(s)
		backEdge := header
		if x.Post != nil {
			backEdge = b.stmt(x.Post, header, nil, nil)
		}
		// Register the loop's label (if any) before wiring the body, so
		// labeled break/continue inside it resolve.
		b.withLabel(s, next, backEdge)
		bodyEntry := b.block(x.Body.List, backEdge, next, backEdge)
		header.Succ = []*cfgNode{bodyEntry}
		if x.Cond != nil {
			header.Succ = append(header.Succ, next)
		}
		// `for { ... }` with no cond only leaves via break/return, which
		// the body edges already model.
		if x.Init != nil {
			return b.stmt(x.Init, header, brk, cont)
		}
		return header

	case *ast.RangeStmt:
		header := b.node(s)
		b.withLabel(s, next, header)
		bodyEntry := b.block(x.Body.List, header, next, header)
		header.Succ = []*cfgNode{bodyEntry, next}
		return header

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return b.switchStmt(s, next, cont)

	case *ast.SelectStmt:
		n := b.node(s)
		for _, c := range x.Body.List {
			comm := c.(*ast.CommClause)
			stmts := comm.Body
			if comm.Comm != nil {
				// The communication op (`case v := <-ch:`) executes before
				// the clause body; give it its own node.
				stmts = append([]ast.Stmt{comm.Comm}, comm.Body...)
			}
			n.Succ = append(n.Succ, b.block(stmts, next, next, cont))
		}
		if len(n.Succ) == 0 {
			// `select {}` blocks forever.
			n.Terminates = true
		}
		return n

	case *ast.LabeledStmt:
		// Record the label so break/continue inside the labeled construct
		// can resolve it; the inner statement wires itself.
		b.pendingLabel = x.Label.Name
		entry := b.stmt(x.Stmt, next, brk, cont)
		b.pendingLabel = ""
		return entry

	case *ast.ReturnStmt:
		n := b.node(s)
		n.IsReturn = true
		n.Succ = []*cfgNode{b.g.Exit}
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		switch x.Tok.String() {
		case "break":
			target := brk
			if x.Label != nil {
				target = b.labelBreak[x.Label.Name]
			}
			if target != nil {
				n.Succ = []*cfgNode{target}
			} else {
				n.Succ = []*cfgNode{b.g.Exit}
			}
		case "continue":
			target := cont
			if x.Label != nil {
				target = b.labelContinue[x.Label.Name]
			}
			if target != nil {
				n.Succ = []*cfgNode{target}
			} else {
				n.Succ = []*cfgNode{b.g.Exit}
			}
		default:
			// goto / fallthrough outside a switch: route to exit so the
			// analysis stays conservative.
			n.Succ = []*cfgNode{b.g.Exit}
		}
		return n

	default:
		n := b.node(s)
		if stmtTerminates(b.info, s) {
			n.Terminates = true
			return n
		}
		n.Succ = []*cfgNode{next}
		return n
	}
}

// switchStmt wires switch and type-switch statements, including
// fallthrough chains.
func (b *cfgBuilder) switchStmt(s ast.Stmt, next, cont *cfgNode) *cfgNode {
	n := b.node(s)
	b.withLabel(s, next, nil)

	var body *ast.BlockStmt
	var initStmt ast.Stmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		body, initStmt = x.Body, x.Init
	case *ast.TypeSwitchStmt:
		body, initStmt = x.Body, x.Init
	}

	clauses := body.List
	hasDefault := false
	// Build clause bodies back to front so fallthrough can target the
	// following clause's entry.
	entries := make([]*cfgNode, len(clauses))
	following := next
	for i := len(clauses) - 1; i >= 0; i-- {
		cc := clauses[i].(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		// A fallthrough as the final statement jumps to the next clause
		// body; model it by making the clause's "next" the following
		// clause entry when it ends in fallthrough, else the switch exit.
		tail := next
		if endsInFallthrough(cc.Body) {
			tail = following
		}
		entries[i] = b.block(cc.Body, tail, next, cont)
		following = entries[i]
	}
	n.Succ = append(n.Succ, entries...)
	if !hasDefault {
		n.Succ = append(n.Succ, next)
	}
	if initStmt != nil {
		return b.stmt(initStmt, n, nil, cont)
	}
	return n
}

// endsInFallthrough reports whether the clause body's final statement
// is a fallthrough.
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// pendingLabel communicates a label from LabeledStmt to the loop or
// switch statement it names (set immediately before the inner stmt is
// wired).
func (b *cfgBuilder) withLabel(s ast.Stmt, brk, cont *cfgNode) {
	if b.pendingLabel == "" {
		return
	}
	b.labelBreak[b.pendingLabel] = brk
	if cont != nil {
		b.labelContinue[b.pendingLabel] = cont
	}
	b.pendingLabel = ""
	_ = s
}

// stmtTerminates reports whether s unconditionally stops execution:
// panic, os.Exit, runtime.Goexit, log.Fatal*, or a testing Fatal*/
// Skip* method.
func stmtTerminates(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if info != nil {
			if obj := info.ObjectOf(fun.Sel); obj != nil {
				switch objPkgPath(obj) {
				case "os":
					return name == "Exit"
				case "runtime":
					return name == "Goexit"
				case "log":
					return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
				case "testing":
					return name == "Fatal" || name == "Fatalf" || name == "FailNow" ||
						name == "Skip" || name == "Skipf" || name == "SkipNow"
				}
				return false
			}
		}
		// Without type info, fall back to the conventional names.
		switch name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln", "FailNow":
			return true
		}
	}
	return false
}

package lint

import (
	"bufio"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureCases pairs each golden fixture directory under testdata/src
// with the check (and configuration) it exercises.
func fixtureCases() []struct {
	name  string
	check Check
} {
	return []struct {
		name  string
		check Check
	}{
		{"mathrand", &MathRandCheck{Allow: []string{"fixture/mathrand_allowed"}}},
		{"mathrand_allowed", &MathRandCheck{Allow: []string{"fixture/mathrand_allowed"}}},
		{"maprange", &MapRangeCheck{}},
		{"copylocks", &CopyLocksCheck{}},
		{"loopcapture", &LoopCaptureCheck{}},
		{"wgadd", &WgAddCheck{}},
		{"droppederr", &DroppedErrCheck{}},
		{"detpath", &DetPathCheck{}},
		{"detpath_plain", &DetPathCheck{}},
		{"gobfields", &GobFieldsCheck{}},
		{"errcmpsentinel", &ErrCmpSentinelCheck{}},
		{"closeleak", &CloseLeakCheck{}},
		{"tickerloop", &TickerLoopCheck{}},
		{"atomicalign", &AtomicAlignCheck{}},
	}
}

// TestCheckFixtures runs each check against its fixture package and
// compares the findings against the `// want <check>` markers in the
// fixture sources. Fixtures also carry negative cases (no marker) and
// //maldlint:ignore suppressions, so an exact match proves all three
// behaviors.
func TestCheckFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, tc := range fixtureCases() {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.name)
			pkg, err := loader.LoadDir(dir, "fixture/"+tc.name)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			runner := &Runner{Checks: []Check{tc.check}}
			var got []string
			for _, d := range runner.Run(pkg) {
				got = append(got, fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check))
			}
			want, err := parseWants(dir, tc.check.Name())
			if err != nil {
				t.Fatalf("parseWants: %v", err)
			}
			sort.Strings(got)
			sort.Strings(want)
			if !equalStrings(got, want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// parseWants scans the fixture sources for `// want <check>` markers and
// returns the expected "file:line:check" keys.
func parseWants(dir, check string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var want []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			_, after, found := strings.Cut(sc.Text(), "// want ")
			if !found {
				continue
			}
			for _, name := range strings.Fields(after) {
				if name == check {
					want = append(want, fmt.Sprintf("%s:%d:%s", e.Name(), line, name))
				}
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return want, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSuppressionParsing covers the directive syntax in isolation.
func TestSuppressionParsing(t *testing.T) {
	cases := []struct {
		rest string
		want []string
	}{
		{"mathrand", []string{"mathrand"}},
		{"mathrand,maprange rationale here", []string{"mathrand", "maprange"}},
		{"droppederr best-effort cleanup", []string{"droppederr"}},
		{"", nil},
		{"   ", nil},
	}
	for _, tc := range cases {
		got := parseIgnoreList(tc.rest)
		if !equalStrings(got, tc.want) {
			t.Errorf("parseIgnoreList(%q) = %v, want %v", tc.rest, got, tc.want)
		}
	}
}

// TestWalkFindsLintPackage sanity-checks the module walker from inside a
// real module.
func TestWalkFindsLintPackage(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Walk()
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	found := false
	for _, p := range paths {
		if p == "repro/internal/lint" {
			found = true
		}
		if strings.Contains(p, "testdata") {
			t.Errorf("Walk returned a testdata package: %s", p)
		}
	}
	if !found {
		t.Errorf("Walk did not return repro/internal/lint; got %d paths", len(paths))
	}
}

// TestBuildableConstraints verifies that the loader's file filter
// honors //go:build lines under the default tag set, so tag-paired
// files (race/norace) never both load into one package.
func TestBuildableConstraints(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"package p\n", true},
		{"//go:build race\n\npackage p\n", false},
		{"//go:build !race\n\npackage p\n", true},
		{"//go:build ignore\n\npackage p\n", false},
		{"//go:build linux || windows || darwin\n\npackage p\n", true},
		{"//go:build go1.21\n\npackage p\n", true},
		{"// +build race\n\npackage p\n", false},
		{"// a normal comment\n\npackage p\n", true},
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	fset := token.NewFileSet()
	for _, tc := range cases {
		f, err := parser.ParseFile(fset, "x.go", tc.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		if got := loader.buildable(f); got != tc.want {
			t.Errorf("buildable(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestCheckByName verifies the registry round-trips every check.
func TestCheckByName(t *testing.T) {
	for _, c := range AllChecks() {
		got := CheckByName(c.Name())
		if got == nil || got.Name() != c.Name() {
			t.Errorf("CheckByName(%q) failed", c.Name())
		}
	}
	if CheckByName("nope") != nil {
		t.Errorf("CheckByName(nope) should be nil")
	}
}

package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// JSONFinding is the machine-readable form of one diagnostic, the unit
// of maldlint -json output and of baseline files. Key deliberately
// omits line and column: a baseline entry identifies a finding by
// file, check, and message, so unrelated edits that shift line numbers
// do not invalidate the baseline.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	// Fixable marks findings maldlint -fix can rewrite mechanically.
	Fixable bool `json:"fixable,omitempty"`
}

// Key is the baseline identity of the finding: file|check|message,
// line-number free.
func (f JSONFinding) Key() string {
	return f.File + "|" + f.Check + "|" + f.Message
}

// JSONReport is the top-level -json document.
type JSONReport struct {
	// Findings are the unsuppressed, unbaselined findings in position
	// order.
	Findings []JSONFinding `json:"findings"`
	// Baselined counts findings matched (and swallowed) by the baseline.
	Baselined int `json:"baselined"`
	// Checks lists every check that ran, for auditability.
	Checks []string `json:"checks"`
}

// ToJSON converts diagnostics to their wire form. file paths should
// already be relativized by the caller.
func ToJSON(diags []Diagnostic) []JSONFinding {
	out := make([]JSONFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Check:    d.Check,
			Severity: d.Severity.String(),
			Message:  d.Message,
			Fixable:  d.Fix != nil,
		})
	}
	return out
}

// Baseline is a multiset of accepted finding keys. Multiset, not set:
// two identical findings in one file (same check, same message,
// different lines) need two baseline entries, and fixing one of them
// must surface the other as new.
type Baseline struct {
	counts map[string]int
}

// ReadBaseline loads a baseline file: a JSON array of JSONFinding
// (line/column ignored). An empty file or empty array is a valid,
// empty baseline.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &Baseline{counts: make(map[string]int)}
	if len(data) == 0 {
		return b, nil
	}
	var entries []JSONFinding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for _, e := range entries {
		b.counts[e.Key()]++
	}
	return b, nil
}

// WriteBaseline writes findings as a baseline file, sorted by key so
// the file is diff-stable.
func WriteBaseline(w io.Writer, findings []JSONFinding) error {
	entries := make([]JSONFinding, len(findings))
	copy(entries, findings)
	for i := range entries {
		// Strip positions: they are not part of baseline identity and
		// would churn the committed file on every unrelated edit.
		entries[i].Line = 0
		entries[i].Column = 0
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key() < entries[j].Key() })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// Filter splits findings into new (not covered by the baseline) and
// the count of baselined ones. Each baseline entry absorbs at most as
// many findings as its multiplicity.
func (b *Baseline) Filter(findings []JSONFinding) (fresh []JSONFinding, baselined int) {
	remaining := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for _, f := range findings {
		if remaining[f.Key()] > 0 {
			remaining[f.Key()]--
			baselined++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, baselined
}

// Len returns the number of baseline entries (with multiplicity).
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRangeCheck flags `for range` over a map in code that produces
// ordered output. Go randomizes map iteration order, so a loop that
// prints, writes, or accumulates a slice while ranging over a map makes
// reports, feature vectors and embeddings nondeterministic run-to-run —
// exactly the fragility HinDom and the Zhauniarovich survey warn about.
//
// A range over a map is accepted when it only performs order-insensitive
// work (counting, summing, filling another map), or when every slice it
// appends to is passed to a sort.* / slices.Sort* call after the loop in
// the same function.
type MapRangeCheck struct{}

// Name implements Check.
func (*MapRangeCheck) Name() string { return "maprange" }

// Doc implements Check.
func (*MapRangeCheck) Doc() string {
	return "flag map iteration that feeds ordered output unless the result is sorted"
}

// Severity implements Check.
func (*MapRangeCheck) Severity() Severity { return SeverityWarning }

// Explain implements Check.
func (*MapRangeCheck) Explain() string {
	return `Go randomizes map iteration order on purpose. Code that ranges over a
map and feeds the iteration directly into output — appending to a
result slice, writing lines, hashing — produces a different order every
run, which breaks the repo's bit-identical model files and stable alert
feeds.

maprange flags map ranges whose bodies emit per-element output without
an intervening sort. Collect the keys, sort them, then iterate; or
accumulate into an order-insensitive structure and sort once at the
end. Ranges that only aggregate (sums, max, set inserts) are fine and
are not flagged.`
}

// Run implements Check.
func (*MapRangeCheck) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body := funcBody(n)
			if body == nil {
				return true
			}
			// Examine the ranges belonging directly to this function;
			// nested function literals are visited as their own
			// functions by the outer Inspect.
			inspectShallow(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := typeUnderlying(p, rs.X).(*types.Map); isMap {
					checkMapRange(p, rs, body)
				}
				return true
			})
			return true
		})
	}
}

// funcBody returns the body of a FuncDecl or FuncLit, or nil for other
// nodes.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch x := n.(type) {
	case *ast.FuncDecl:
		return x.Body
	case *ast.FuncLit:
		return x.Body
	}
	return nil
}

// inspectShallow walks root like ast.Inspect but does not descend into
// nested function literals.
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}

func typeUnderlying(p *Pass, e ast.Expr) types.Type {
	t := p.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// writeMethods are method names that emit ordered output.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// checkMapRange classifies what the loop body does with the map's
// entries and reports order-sensitive uses.
func checkMapRange(p *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	if pos, what := findOutputCall(p, rs.Body); pos.IsValid() {
		p.Reportf(rs.Pos(),
			"range over a map emits ordered output (%s): iteration order is randomized; iterate sorted keys instead", what)
		return
	}
	for _, obj := range appendTargets(p, rs) {
		if !sortedAfter(p, enclosing, obj, rs.End()) {
			p.Reportf(rs.Pos(),
				"range over a map appends to %s, which is never sorted afterward in this function: iteration order is randomized", obj.Name())
		}
	}
}

// findOutputCall returns the position and description of the first
// order-sensitive output call in the loop body, if any.
func findOutputCall(p *Pass, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Info.ObjectOf(sel.Sel)
		if obj != nil && objPkgPath(obj) == "fmt" &&
			(strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
			pos, what = call.Pos(), "fmt."+obj.Name()
			return false
		}
		if writeMethods[sel.Sel.Name] {
			if _, isMethod := p.Info.Selections[sel]; isMethod {
				pos, what = call.Pos(), sel.Sel.Name
				return false
			}
		}
		return true
	})
	return pos, what
}

// appendTargets returns the objects of slices declared outside the loop
// that the loop body appends to.
func appendTargets(p *Pass, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	inspectShallow(rs.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) || i >= len(assign.Lhs) {
				continue
			}
			id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || seen[obj] {
				continue
			}
			// Only slices that outlive the loop matter.
			if obj.Pos() < rs.Pos() {
				seen[obj] = true
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after position after within body.
func sortedAfter(p *Pass, body *ast.BlockStmt, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		callee := calleeObject(p.Info, call)
		if callee == nil {
			return true
		}
		pkg := objPkgPath(callee)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(p, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsObject reports whether the expression tree references obj.
func mentionsObject(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

package lint

import (
	"go/ast"
	"go/types"
)

// LoopCaptureCheck flags goroutines launched inside a loop whose
// function literal references the loop variables instead of receiving
// them as arguments. Go 1.22 made loop variables per-iteration, so the
// classic aliasing bug no longer bites — but the repo still requires the
// explicit-parameter style: it keeps worker code correct under older
// toolchains, and makes the data each goroutine owns visible at the go
// statement (the style internal/line and internal/xmeans already use).
type LoopCaptureCheck struct{}

// Name implements Check.
func (*LoopCaptureCheck) Name() string { return "loopcapture" }

// Doc implements Check.
func (*LoopCaptureCheck) Doc() string {
	return "flag goroutines that capture loop variables instead of taking them as arguments"
}

// Severity implements Check.
func (*LoopCaptureCheck) Severity() Severity { return SeverityWarning }

// Explain implements Check.
func (*LoopCaptureCheck) Explain() string {
	return `Before Go 1.22, a goroutine or deferred closure launched inside a loop
that captures the iteration variable sees the variable, not the value —
by the time it runs, every capture observes the final iteration. Go
1.22 made loop variables per-iteration, but this module must also read
cleanly under older toolchains, and captures of variables *assigned*
in the loop body (not the range variable itself) still alias.

loopcapture flags go statements and defers inside loop bodies whose
closures capture loop-scoped variables without rebinding. Pass the
value as an argument (go func(v T) {...}(v)) or rebind (v := v) before
launching.`
}

// Run implements Check.
func (c *LoopCaptureCheck) Run(p *Pass) {
	for _, f := range p.Files {
		var loopVars []map[types.Object]bool
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ForStmt:
				vars := declaredVars(p, x.Init)
				loopVars = append(loopVars, vars)
				ast.Inspect(x.Body, walk)
				if x.Post != nil {
					ast.Inspect(x.Post, walk)
				}
				loopVars = loopVars[:len(loopVars)-1]
				return false
			case *ast.RangeStmt:
				vars := make(map[types.Object]bool)
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if id, ok := e.(*ast.Ident); ok && id != nil {
						if obj := p.Info.ObjectOf(id); obj != nil {
							vars[obj] = true
						}
					}
				}
				loopVars = append(loopVars, vars)
				ast.Inspect(x.Body, walk)
				loopVars = loopVars[:len(loopVars)-1]
				return false
			case *ast.GoStmt:
				if len(loopVars) == 0 {
					return true
				}
				fn, ok := x.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				c.checkCapture(p, fn, loopVars)
				// Arguments are evaluated at the go statement, outside
				// the goroutine — keep walking them normally.
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// declaredVars collects variables defined by a for-loop init statement.
func declaredVars(p *Pass, init ast.Stmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	assign, ok := init.(*ast.AssignStmt)
	if !ok {
		return vars
	}
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// checkCapture reports references inside the goroutine body to any
// in-scope loop variable.
func (c *LoopCaptureCheck) checkCapture(p *Pass, fn *ast.FuncLit, loopVars []map[types.Object]bool) {
	reported := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		for _, scope := range loopVars {
			if scope[obj] {
				reported[obj] = true
				p.Reportf(id.Pos(),
					"goroutine captures loop variable %s: pass it as an argument to the function literal", obj.Name())
				break
			}
		}
		return true
	})
}

package lint

import (
	"go/ast"
	"go/types"
)

// AtomicAlignCheck guards the 32-bit portability of sync/atomic use.
// The first word of an allocated struct is 8-byte aligned on every
// platform, but on 386/arm a uint64 field at offset 4 (or 12, ...) is
// only 4-byte aligned — and the 64-bit atomic functions panic with
// "unaligned 64-bit atomic operation" at runtime on those platforms.
// The repo's counters (serve metrics, stream stats) use this pattern,
// and the failure is invisible on the amd64 CI host: only this check
// sees it.
type AtomicAlignCheck struct{}

// Name implements Check.
func (*AtomicAlignCheck) Name() string { return "atomicalign" }

// Doc implements Check.
func (*AtomicAlignCheck) Doc() string {
	return "flag 64-bit sync/atomic ops on struct fields misaligned on 32-bit platforms"
}

// Explain implements Check.
func (*AtomicAlignCheck) Explain() string {
	return `sync/atomic's 64-bit operations (AddUint64, LoadInt64, ...) require
their operand to be 8-byte aligned. On amd64 every word is; on 386 and
32-bit arm, struct layout only guarantees 4-byte alignment, so

    type stats struct {
        open  uint32
        total uint64   // offset 4 on 386
    }
    atomic.AddUint64(&s.total, 1)   // panics on 386

compiles everywhere and panics only on 32-bit hosts — the worst kind of
portability bug, invisible to amd64 CI.

atomicalign computes each field's offset under the gc/386 layout rules
and flags every &struct.field argument to a 64-bit atomic function
whose offset is not a multiple of 8. Slice elements and local
variables are skipped (the spec aligns them). Fix by moving 64-bit
atomic fields to the front of the struct, padding to an 8-byte
boundary, or using atomic.Uint64 (Go 1.19+), which carries its own
alignment guarantee.`
}

// Severity implements Check.
func (*AtomicAlignCheck) Severity() Severity { return SeverityWarning }

// atomic64Funcs are the sync/atomic functions whose first argument is a
// *int64/*uint64 and must be 8-byte aligned.
var atomic64Funcs = map[string]bool{
	"AddInt64":             true,
	"AddUint64":            true,
	"LoadInt64":            true,
	"LoadUint64":           true,
	"StoreInt64":           true,
	"StoreUint64":          true,
	"SwapInt64":            true,
	"SwapUint64":           true,
	"CompareAndSwapInt64":  true,
	"CompareAndSwapUint64": true,
}

// sizes32 models the gc compiler's layout on a 32-bit platform, where
// 64-bit fields get only word alignment.
var sizes32 = types.SizesFor("gc", "386")

// Run implements Check.
func (c *AtomicAlignCheck) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			obj := calleeObject(p.Info, call)
			if obj == nil || objPkgPath(obj) != "sync/atomic" || !atomic64Funcs[obj.Name()] {
				return true
			}
			c.checkArg(p, call, call.Args[0])
			return true
		})
	}
}

// checkArg inspects the &x.f argument of a 64-bit atomic call and
// reports when the field's 32-bit offset is misaligned.
func (c *AtomicAlignCheck) checkArg(p *Pass, call *ast.CallExpr, arg ast.Expr) {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return // *uint64 value of unknown provenance: nothing to prove
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return // &local or &slice[i]: spec-aligned
	}
	off, fieldName, structName, ok := fieldOffset32(p, sel)
	if !ok {
		return
	}
	if off%8 != 0 {
		p.Reportf(call.Pos(),
			"64-bit atomic on %s.%s panics on 32-bit platforms (offset %d under 386 layout); move it first in the struct or use atomic.Uint64",
			structName, fieldName, off)
	}
}

// fieldOffset32 resolves sel as a struct field selection and returns
// the field's byte offset under 386 layout. Selections through a
// pointer deref reset alignment to the allocation guarantee, so only
// the offset within the outermost addressed struct matters; Go's
// selector resolution already gives us exactly that via the field's
// index path in its immediate struct chain.
func fieldOffset32(p *Pass, sel *ast.SelectorExpr) (off int64, field, structName string, ok bool) {
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return 0, "", "", false
	}
	recv := selection.Recv()
	// A pointer receiver means the struct itself starts at an allocated
	// address, which is 8-byte aligned; a value receiver embedded deeper
	// would need the outer offset too — handled below by walking the
	// index path inside one struct type.
	if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	structName = recv.String()
	if named, isNamed := recv.(*types.Named); isNamed {
		structName = named.Obj().Name()
	}
	t := recv
	var total int64
	for _, idx := range selection.Index() {
		if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
			// Embedded pointer: deref re-anchors at an allocation
			// boundary, so the accumulated offset resets.
			t = ptr.Elem()
			total = 0
		}
		st, isStruct := t.Underlying().(*types.Struct)
		if !isStruct || idx >= st.NumFields() {
			return 0, "", "", false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		total += offsets[idx]
		f := st.Field(idx)
		field = f.Name()
		t = f.Type()
	}
	return total, field, structName, true
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErrCheck flags expression statements that call a function
// returning an error and silently discard it. Outside tests, every
// error must be handled, returned, or explicitly assigned to blank.
//
// Exempt by design, mirroring errcheck's defaults:
//   - fmt.Print / fmt.Printf / fmt.Println (terminal output);
//   - fmt.Fprint* writing to os.Stdout, os.Stderr, a *strings.Builder
//     or a *bytes.Buffer;
//   - methods on *strings.Builder and *bytes.Buffer, whose errors are
//     documented to always be nil.
type DroppedErrCheck struct{}

// Name implements Check.
func (*DroppedErrCheck) Name() string { return "droppederr" }

// Doc implements Check.
func (*DroppedErrCheck) Doc() string {
	return "flag discarded error returns outside _test.go files"
}

// Severity implements Check.
func (*DroppedErrCheck) Severity() Severity { return SeverityError }

// Explain implements Check.
func (*DroppedErrCheck) Explain() string {
	return `An expression-statement call whose error result is never bound (not
even to _) is an error silently ignored — Close on a written file,
Flush on a buffered writer, Encode on a checkpoint. The crash-safety
work (PR 5) made write-path errors load-bearing: a dropped Close error
means a torn model file that only surfaces on the next load.

droppederr flags statement-position calls returning an error that the
statement discards. Handle it, return it, or make the dismissal
explicit and auditable with _ = f.Close() — the explicit blank
assignment is the repo's signal that dropping was a decision, not an
oversight.`
}

// Run implements Check.
func (c *DroppedErrCheck) Run(p *Pass) {
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			if !returnsError(p, call) || c.exempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(),
				"error returned by %s is discarded: handle it or assign it to _ explicitly",
				types.ExprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call.Fun)
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// exempt applies the whitelist documented on the check.
func (c *DroppedErrCheck) exempt(p *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(p.Info, call)
	if obj == nil {
		return false
	}
	name := obj.Name()
	if objPkgPath(obj) == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			if isOSStdStream(p, call.Args[0]) || isNilErrWriter(p.TypeOf(call.Args[0])) {
				return true
			}
		}
		return false
	}
	// Methods on always-nil-error writers.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isNilErrWriter(p.TypeOf(sel.X)) {
			return true
		}
	}
	return false
}

// isNilErrWriter reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer, whose Write methods are documented to never return a
// non-nil error.
func isNilErrWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := objPkgPath(named.Obj())
	name := named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// isOSStdStream reports whether e resolves to os.Stdout or os.Stderr.
func isOSStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.ObjectOf(sel.Sel)
	return obj != nil && objPkgPath(obj) == "os" &&
		(obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
)

// ApplyFixes applies the mechanical fixes attached to diags to the
// files on disk and returns the number of edits written per file.
// Edits within one file are applied back to front so earlier offsets
// stay valid; overlapping edits are rejected. Missing imports required
// by a fix (errcmpsentinel's "errors") are inserted afterwards.
func ApplyFixes(diags []Diagnostic) (map[string]int, error) {
	byFile := make(map[string][]Diagnostic)
	for _, d := range diags {
		if d.Fix != nil {
			byFile[d.Pos.Filename] = append(byFile[d.Pos.Filename], d)
		}
	}
	applied := make(map[string]int, len(byFile))
	for file, ds := range byFile {
		n, err := applyFileFixes(file, ds)
		if err != nil {
			return applied, fmt.Errorf("%s: %w", file, err)
		}
		applied[file] = n
	}
	return applied, nil
}

// applyFileFixes rewrites one file.
func applyFileFixes(file string, diags []Diagnostic) (int, error) {
	src, err := os.ReadFile(file)
	if err != nil {
		return 0, err
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Fix.Start > diags[j].Fix.Start })
	var needImports []string
	prevStart := len(src) + 1
	for _, d := range diags {
		f := d.Fix
		if f.Start < 0 || f.End > len(src) || f.Start > f.End {
			return 0, fmt.Errorf("fix range [%d,%d) out of bounds", f.Start, f.End)
		}
		if f.End > prevStart {
			return 0, fmt.Errorf("overlapping fixes at offset %d", f.Start)
		}
		prevStart = f.Start
		src = append(src[:f.Start], append([]byte(f.NewText), src[f.End:]...)...)
		if f.NeedsImport != "" {
			needImports = append(needImports, f.NeedsImport)
		}
	}
	for _, imp := range needImports {
		src, err = ensureImport(src, file, imp)
		if err != nil {
			return 0, err
		}
	}
	info, err := os.Stat(file)
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(file, src, info.Mode().Perm()); err != nil {
		return 0, err
	}
	return len(diags), nil
}

// ensureImport adds an import of path to src (re-parsed after the text
// edits) unless one already exists. The new spec is spliced into the
// first import declaration, or a new one is inserted after the package
// clause when the file has none.
func ensureImport(src []byte, filename, path string) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ImportsOnly)
	if err != nil {
		return nil, fmt.Errorf("re-parse after fix: %w", err)
	}
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return src, nil
		}
	}
	quoted := strconv.Quote(path)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			// Grouped import: insert a spec line right after the paren.
			off := fset.Position(gd.Lparen).Offset + 1
			ins := "\n\t" + quoted
			return splice(src, off, ins), nil
		}
		// Single ungrouped import: add a second import declaration after
		// it.
		off := fset.Position(gd.End()).Offset
		ins := "\nimport " + quoted
		return splice(src, off, ins), nil
	}
	// No imports at all: insert after the package clause line.
	off := fset.Position(f.Name.End()).Offset
	ins := "\n\nimport " + quoted
	return splice(src, off, ins), nil
}

// splice inserts text at offset.
func splice(src []byte, off int, text string) []byte {
	out := make([]byte, 0, len(src)+len(text))
	out = append(out, src[:off]...)
	out = append(out, text...)
	out = append(out, src[off:]...)
	return out
}

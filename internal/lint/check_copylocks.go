package lint

import (
	"go/ast"
	"go/types"
)

// CopyLocksCheck flags values of sync.Mutex, sync.RWMutex,
// sync.WaitGroup, sync.Once or sync.Cond (or structs/arrays containing
// one) copied by value: as function parameters, results, or value
// receivers; as range values; in plain assignments from an existing
// variable; and as call arguments. A copied lock guards nothing — two
// goroutines end up serializing on different mutexes.
type CopyLocksCheck struct{}

// Name implements Check.
func (*CopyLocksCheck) Name() string { return "copylocks" }

// Doc implements Check.
func (*CopyLocksCheck) Doc() string {
	return "flag sync.Mutex/RWMutex/WaitGroup/Once/Cond copied by value"
}

// Severity implements Check.
func (*CopyLocksCheck) Severity() Severity { return SeverityError }

// Explain implements Check.
func (*CopyLocksCheck) Explain() string {
	return `Copying a sync.Mutex (or any struct containing one) forks the lock
state: the copy and the original no longer exclude each other, so two
goroutines can both "hold" what they believe is the same lock. The
failure is a data race that -race only catches when the interleaving
actually happens.

copylocks flags value copies of types that transitively contain
sync.Mutex, RWMutex, WaitGroup, Once, or Cond — in assignments, value
receivers, parameters, and range statements. Pass such types by
pointer; references (pointers, slices, maps, channels) to lock-bearing
types are safe and not flagged.`
}

// Run implements Check.
func (c *CopyLocksCheck) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv != nil {
					c.checkFieldList(p, x.Recv, "receiver")
				}
				if x.Type.Params != nil {
					c.checkFieldList(p, x.Type.Params, "parameter")
				}
			case *ast.FuncLit:
				if x.Type.Params != nil {
					c.checkFieldList(p, x.Type.Params, "parameter")
				}
			case *ast.ReturnStmt:
				// Returning a fresh composite literal is fine; returning
				// an existing lock-bearing value copies it.
				for _, res := range x.Results {
					c.checkValueCopy(p, res)
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					if t := p.TypeOf(x.Value); t != nil && containsLock(t) {
						p.Reportf(x.Value.Pos(),
							"range value copies a lock: %s contains a sync primitive; iterate by index or over pointers", typeString(t))
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					c.checkValueCopy(p, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range x.Values {
					c.checkValueCopy(p, v)
				}
			case *ast.CallExpr:
				if isBuiltinAppend(p, x) {
					return true
				}
				for _, arg := range x.Args {
					c.checkValueCopy(p, arg)
				}
			}
			return true
		})
	}
}

// checkFieldList reports fields whose by-value type contains a lock.
func (c *CopyLocksCheck) checkFieldList(p *Pass, fl *ast.FieldList, kind string) {
	for _, field := range fl.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			p.Reportf(field.Pos(),
				"%s passes a lock by value: %s contains a sync primitive; use a pointer", kind, typeString(t))
		}
	}
}

// checkValueCopy reports expressions that copy an existing lock-bearing
// value. Composite literals and function calls create fresh values and
// are fine; reads of variables, fields, elements, and dereferences are
// copies.
func (c *CopyLocksCheck) checkValueCopy(p *Pass, e ast.Expr) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := p.TypeOf(e)
	if t == nil || !containsLock(t) {
		return
	}
	p.Reportf(e.Pos(), "expression copies a lock: %s contains a sync primitive", typeString(t))
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

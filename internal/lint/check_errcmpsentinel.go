package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmpSentinelCheck flags err == ErrX / err != ErrX comparisons
// against sentinel error values. This repository wraps its sentinels —
// Scorer.Lookup returns fmt.Errorf("%q: %w", d, ErrUnknownDomain),
// stream degradation wraps DegradedError chains — so identity
// comparison silently stops matching the moment a call site adds
// context. errors.Is walks the Unwrap chain and is the only comparison
// that honors the sentinel contract.
//
// The check carries a mechanical fix (maldlint -fix): the comparison is
// rewritten to errors.Is(err, ErrX) (negated for !=) and an "errors"
// import is added when missing.
type ErrCmpSentinelCheck struct{}

// Name implements Check.
func (*ErrCmpSentinelCheck) Name() string { return "errcmpsentinel" }

// Doc implements Check.
func (*ErrCmpSentinelCheck) Doc() string {
	return "flag err == ErrX identity comparisons that must be errors.Is for wrapped chains"
}

// Explain implements Check.
func (*ErrCmpSentinelCheck) Explain() string {
	return `Sentinel errors in this repository (core.ErrUnknownDomain,
stream.ErrCorruptCheckpoint, io.EOF, ...) travel through fmt.Errorf
("%w") wrapping and typed chains like stream.DegradedError. An identity
comparison — err == ErrX or err != ErrX — only matches the unwrapped
value, so it breaks silently as soon as any layer adds context:
exactly the bug class the sentinel-error contract exists to prevent.

errcmpsentinel flags every ==/!= comparison where one operand is a
package-level error variable (a sentinel) and the other is any error
expression. nil comparisons are untouched.

This is the one mechanical check: run maldlint -fix to rewrite the
comparison to errors.Is(err, ErrX) (or !errors.Is(...) for !=); the
"errors" import is added when the file lacks it.`
}

// Severity implements Check.
func (*ErrCmpSentinelCheck) Severity() Severity { return SeverityError }

// Run implements Check.
func (c *ErrCmpSentinelCheck) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			var sentinel, other ast.Expr
			switch {
			case isSentinelRef(p, bin.Y) && isErrorExpr(p, bin.X):
				sentinel, other = bin.Y, bin.X
			case isSentinelRef(p, bin.X) && isErrorExpr(p, bin.Y):
				sentinel, other = bin.X, bin.Y
			default:
				return true
			}
			fix := c.buildFix(p, bin, other, sentinel)
			p.ReportFix(bin.Pos(), fix,
				"%s sentinel comparison with %s misses wrapped errors: use errors.Is",
				bin.Op, types.ExprString(sentinel))
			return true
		})
	}
}

// buildFix rewrites the comparison to (!)errors.Is(other, sentinel),
// preserving the original operand spelling.
func (*ErrCmpSentinelCheck) buildFix(p *Pass, bin *ast.BinaryExpr, other, sentinel ast.Expr) *Fix {
	start := p.Fset.Position(bin.Pos())
	end := p.Fset.Position(bin.End())
	if start.Filename != end.Filename {
		return nil
	}
	neg := ""
	if bin.Op == token.NEQ {
		neg = "!"
	}
	return &Fix{
		Start: start.Offset,
		End:   end.Offset,
		NewText: neg + "errors.Is(" + types.ExprString(other) + ", " +
			types.ExprString(sentinel) + ")",
		NeedsImport: "errors",
	}
}

// isSentinelRef reports whether e references a package-level variable
// of type error — the shape of every sentinel (errors.New at package
// scope), including stdlib ones like io.EOF.
func isSentinelRef(p *Pass, e ast.Expr) bool {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = p.Info.ObjectOf(x)
	case *ast.SelectorExpr:
		obj = p.Info.ObjectOf(x.Sel)
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level: its parent scope is the package scope.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	return isErrorType(v.Type())
}

// isErrorExpr reports whether e has static type error (and is not the
// untyped nil).
func isErrorExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	return t != nil && isErrorType(t)
}

// isErrorType reports whether t is exactly the universe error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixErrCmpSentinel runs the check over a throwaway copy of a
// source file, applies the attached fixes, and verifies the rewritten
// file type-checks, uses errors.Is, and gained the errors import.
func TestFixErrCmpSentinel(t *testing.T) {
	src := `package fixme

import "io"

func isEOF(err error) bool {
	return err == io.EOF
}

func notEOF(err error) bool {
	return err != io.EOF
}
`
	dir := t.TempDir()
	path := filepath.Join(dir, "fixme.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	load := func() []Diagnostic {
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		pkg, err := loader.LoadDir(dir, "fixture/fixme")
		if err != nil {
			t.Fatalf("LoadDir: %v", err)
		}
		runner := &Runner{Checks: []Check{&ErrCmpSentinelCheck{}}}
		return runner.Run(pkg)
	}

	diags := load()
	if len(diags) != 2 {
		t.Fatalf("got %d findings before fix, want 2", len(diags))
	}
	for _, d := range diags {
		if d.Fix == nil {
			t.Fatalf("finding %s has no fix", d)
		}
	}
	applied, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if applied[path] != 2 {
		t.Errorf("applied %v, want 2 edits in %s", applied, path)
	}

	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(fixed)
	if !strings.Contains(text, "errors.Is(err, io.EOF)") {
		t.Errorf("== not rewritten to errors.Is:\n%s", text)
	}
	if !strings.Contains(text, "!errors.Is(err, io.EOF)") {
		t.Errorf("!= not rewritten to !errors.Is:\n%s", text)
	}
	if !strings.Contains(text, `"errors"`) {
		t.Errorf("errors import not added:\n%s", text)
	}
	// The fixed file must type-check cleanly and carry zero findings.
	if diags := load(); len(diags) != 0 {
		t.Errorf("after fix, %d findings remain: %v", len(diags), diags)
	}
}

// TestApplyFixesRejectsOverlap guards the back-to-front edit invariant.
func TestApplyFixesRejectsOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	if err := os.WriteFile(path, []byte("package x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: path, Line: 1}, Fix: &Fix{Start: 0, End: 5, NewText: "a"}},
		{Pos: token.Position{Filename: path, Line: 1}, Fix: &Fix{Start: 3, End: 8, NewText: "b"}},
	}
	if _, err := ApplyFixes(diags); err == nil {
		t.Errorf("overlapping fixes were not rejected")
	}
}

// TestEnsureImportVariants covers grouped, single and missing import
// declarations.
func TestEnsureImportVariants(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"grouped", "package x\n\nimport (\n\t\"io\"\n)\n\nvar _ = io.EOF\n"},
		{"single", "package x\n\nimport \"io\"\n\nvar _ = io.EOF\n"},
		{"none", "package x\n"},
		{"present", "package x\n\nimport \"errors\"\n\nvar _ = errors.New\n"},
	}
	for _, tc := range cases {
		out, err := ensureImport([]byte(tc.src), tc.name+".go", "errors")
		if err != nil {
			t.Errorf("%s: ensureImport: %v", tc.name, err)
			continue
		}
		if n := strings.Count(string(out), `"errors"`); n != 1 {
			t.Errorf("%s: %d errors imports after ensureImport, want 1:\n%s", tc.name, n, out)
		}
	}
}

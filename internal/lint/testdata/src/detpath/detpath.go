// Package fixture seeds violations for the detpath check inside a
// package annotated with the determinism contract: wall-clock reads,
// global math/rand use, and map-order-dependent exits, plus sorted and
// suppressed cases.
//
//maldlint:deterministic
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func badWallClock() int64 {
	return time.Now().UnixNano() // want detpath
}

func badGlobalRand() int {
	return rand.Intn(10) // want detpath
}

func badMapReturn(m map[string]int) string {
	for k := range m {
		if m[k] > 0 {
			return k // want detpath
		}
	}
	return ""
}

func badMapBreak(m map[string]int) string {
	best := ""
	for k := range m {
		best = k
		break // want detpath
	}
	return best
}

func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodAggregate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func suppressedNow() time.Time {
	return time.Now() //maldlint:ignore detpath metrics timestamp, never feeds model state
}

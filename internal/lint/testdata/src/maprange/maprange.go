// Package fixture seeds violations for the maprange check: map ranges
// that print or collect without sorting, plus sorted, order-insensitive
// and suppressed cases.
package fixture

import (
	"fmt"
	"sort"
)

func badPrint(m map[string]int) {
	for k, v := range m { // want maprange
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	return keys
}

func goodSortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodCounting(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodMapToMap(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

func suppressedPrint(m map[string]int) {
	//maldlint:ignore maprange fixture: debug dump, order irrelevant
	for k := range m {
		fmt.Println(k)
	}
}

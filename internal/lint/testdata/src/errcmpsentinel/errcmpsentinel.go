// Package fixture seeds violations for the errcmpsentinel check:
// identity comparisons against package-level and stdlib sentinels,
// plus errors.Is, nil-comparison and suppressed cases.
package fixture

import (
	"errors"
	"fmt"
	"io"
)

var errNotFound = errors.New("not found")

func wrap(d string) error { return fmt.Errorf("%q: %w", d, errNotFound) }

func badEq(err error) bool {
	return err == errNotFound // want errcmpsentinel
}

func badNeq(err error) bool {
	return err != io.EOF // want errcmpsentinel
}

func badReversed(err error) bool {
	return errNotFound == err // want errcmpsentinel
}

func goodIs(err error) bool {
	return errors.Is(err, errNotFound)
}

func goodNil(err error) bool {
	return err == nil
}

func suppressedEq(err error) bool {
	return err == errNotFound //maldlint:ignore errcmpsentinel unwrapped identity intended in fixture
}

// Package fixture seeds violations for the tickerloop check: per-
// iteration timer allocation via time.After and time.NewTicker, plus
// hoisted-ticker, outside-loop and suppressed cases.
package fixture

import "time"

func badAfterInSelectLoop(in <-chan int) {
	for {
		select {
		case v := <-in:
			_ = v
		case <-time.After(time.Second): // want tickerloop
			return
		}
	}
}

func badTickerPerIteration(items []int) {
	for range items {
		t := time.NewTicker(time.Second) // want tickerloop
		t.Stop()
	}
}

func badTickInRange(items []int) {
	for range items {
		<-time.Tick(time.Millisecond) // want tickerloop
	}
}

func goodHoistedTicker(in <-chan int) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case v := <-in:
			_ = v
		case <-tick.C:
			return
		}
	}
}

func goodOutsideLoop() <-chan time.Time {
	return time.After(time.Second)
}

func goodMethodNamedAfter(ts []time.Time, cutoff time.Time) int {
	n := 0
	for _, t := range ts {
		if t.After(cutoff) { // time.Time.After allocates nothing
			n++
		}
	}
	return n
}

func suppressedAfter(in <-chan int) {
	for range in {
		<-time.After(time.Millisecond) //maldlint:ignore tickerloop bounded fixture loop, churn is the point
	}
}

// Package fixture mirrors the detpath fixture WITHOUT the
// //maldlint:deterministic annotation: the check must stay silent on
// unannotated packages, so this file has no want markers.
package fixture

import "time"

func wallClockOK() int64 {
	return time.Now().UnixNano()
}

func mapReturnOK(m map[string]int) string {
	for k := range m {
		if m[k] > 0 {
			return k
		}
	}
	return ""
}

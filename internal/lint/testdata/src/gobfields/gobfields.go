// Package fixture seeds violations for the gobfields check: structs
// with unexported fields (silent data loss), interface-typed fields
// (need gob.Register), nested hazards, plus self-encoding, clean-wire
// and suppressed cases.
package fixture

import (
	"bytes"
	"encoding/gob"
	"time"
)

type badUnexported struct {
	Exported int
	hidden   int
}

type badIface struct {
	Payload any
}

type nested struct {
	Inner badUnexported
}

type wire struct {
	A int
	B string
	T time.Time // GobEncoder: manages its own wire format
	_ [4]byte   // blank padding carries no data
}

func encodeBad(enc *gob.Encoder, v badUnexported) error {
	return enc.Encode(v) // want gobfields
}

func encodeIface(enc *gob.Encoder) error {
	return enc.Encode(&badIface{}) // want gobfields
}

func decodeNested(dec *gob.Decoder) error {
	var n nested
	return dec.Decode(&n) // want gobfields
}

func encodeSliceOfBad(enc *gob.Encoder, vs []badUnexported) error {
	return enc.Encode(vs) // want gobfields
}

func encodeGood(w *bytes.Buffer, v wire) error {
	return gob.NewEncoder(w).Encode(v)
}

func decodeGood(dec *gob.Decoder) (wire, error) {
	var v wire
	err := dec.Decode(&v)
	return v, err
}

func encodeSuppressed(enc *gob.Encoder, v badUnexported) error {
	return enc.Encode(v) //maldlint:ignore gobfields fixture exercises suppression
}

// In-package test file: droppederr must not fire in _test.go sources.
package fixture

func discardInTest() {
	mayFail()
}

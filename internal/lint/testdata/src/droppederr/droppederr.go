// Package fixture seeds violations for the droppederr check: discarded
// error returns, plus handled, blank-assigned, exempt and suppressed
// cases.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func valueAndError() (int, error) { return 0, errors.New("boom") }

func badDiscard() {
	mayFail() // want droppederr
}

func badDiscardMulti() {
	valueAndError() // want droppederr
}

func badFprintfToFile(f *os.File) {
	fmt.Fprintf(f, "ok\n") // want droppederr
}

// The checkpoint-write shapes: an atomic temp-file-and-rename sequence
// where any dropped error (flush, sync, close, rename) can silently
// persist a torn or unsynced file. None of these are exempt.
func badCheckpointWritePath(f *os.File) {
	f.Sync()                         // want droppederr
	f.Close()                        // want droppederr
	os.Rename("ckpt.tmp", "ckpt")    // want droppederr
	os.Remove("ckpt.tmp")            // want droppederr
	os.WriteFile("ckpt", nil, 0o644) // want droppederr
	f.Truncate(0)                    // want droppederr
}

func goodCheckpointWritePath(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename("ckpt.tmp", "ckpt"); err != nil {
		// Best-effort cleanup on the failure path is fine when blanked
		// explicitly.
		_ = os.Remove("ckpt.tmp")
		return err
	}
	return nil
}

func goodHandled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func goodExplicitBlank() {
	_ = mayFail()
}

func goodExemptWriters(sb *strings.Builder) {
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "ok\n")
	fmt.Fprintf(sb, "ok %d\n", 1)
	sb.WriteString("ok")
}

func suppressedDiscard() {
	mayFail() //maldlint:ignore droppederr fixture: best-effort cleanup
}

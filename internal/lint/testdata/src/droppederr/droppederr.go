// Package fixture seeds violations for the droppederr check: discarded
// error returns, plus handled, blank-assigned, exempt and suppressed
// cases.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func valueAndError() (int, error) { return 0, errors.New("boom") }

func badDiscard() {
	mayFail() // want droppederr
}

func badDiscardMulti() {
	valueAndError() // want droppederr
}

func badFprintfToFile(f *os.File) {
	fmt.Fprintf(f, "ok\n") // want droppederr
}

func goodHandled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func goodExplicitBlank() {
	_ = mayFail()
}

func goodExemptWriters(sb *strings.Builder) {
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "ok\n")
	fmt.Fprintf(sb, "ok %d\n", 1)
	sb.WriteString("ok")
}

func suppressedDiscard() {
	mayFail() //maldlint:ignore droppederr fixture: best-effort cleanup
}

// Package fixture seeds violations for the copylocks check: locks
// passed, assigned, and ranged over by value, plus pointer-based and
// suppressed cases.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func badParam(mu sync.Mutex) { // want copylocks
	mu.Lock()
}

func goodParam(mu *sync.Mutex) {
	mu.Lock()
}

func badAssign(g *guarded) int {
	cp := *g // want copylocks
	return cp.n
}

func badRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want copylocks
		total += g.n
	}
	return total
}

func goodRange(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func goodFreshValue() guarded {
	return guarded{n: 1}
}

func suppressedAssign(g *guarded) int {
	cp := *g //maldlint:ignore copylocks fixture: snapshot of a settled value
	return cp.n
}

// Package fixture seeds violations for the wgadd check: Add called
// inside the goroutine it accounts for, plus the correct
// Add-before-spawn pattern, a nested worker-pool pattern that must not
// be flagged, and a suppressed case.
package fixture

import (
	"sync"
	"sync/atomic"
)

func badAddInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func(i int) {
			wg.Add(1) // want wgadd
			defer wg.Done()
			_ = i
		}(i)
	}
	wg.Wait()
}

func goodAddBefore(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = i
		}(i)
	}
	wg.Wait()
}

func goodNestedSpawner(jobs [][]int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		for range jobs {
			inner.Add(1)
			go func() {
				defer inner.Done()
			}()
		}
		inner.Wait()
	}()
	wg.Wait()
}

// goodChunkQueueWorkers is the degree-balanced projection pool shape: a
// fixed fan-out of workers that claim work chunks from a shared atomic
// cursor, with Add correctly preceding each spawn.
func goodChunkQueueWorkers(workers int, items []int) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				_ = items[i]
			}
		}()
	}
	wg.Wait()
}

// badChunkQueueWorkers is the same pool with Add moved inside the
// worker, where Wait can run before any worker has registered.
func badChunkQueueWorkers(workers int, items []int) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func() {
			wg.Add(1) // want wgadd
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				_ = items[i]
			}
		}()
	}
	wg.Wait()
}

func suppressedHeldOpen() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(1) //maldlint:ignore wgadd fixture: outer Add already holds the counter open
		go func() { defer wg.Done() }()
	}()
	wg.Wait()
}

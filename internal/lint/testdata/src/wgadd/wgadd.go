// Package fixture seeds violations for the wgadd check: Add called
// inside the goroutine it accounts for, plus the correct
// Add-before-spawn pattern, a nested worker-pool pattern that must not
// be flagged, and a suppressed case.
package fixture

import "sync"

func badAddInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func(i int) {
			wg.Add(1) // want wgadd
			defer wg.Done()
			_ = i
		}(i)
	}
	wg.Wait()
}

func goodAddBefore(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = i
		}(i)
	}
	wg.Wait()
}

func goodNestedSpawner(jobs [][]int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		for range jobs {
			inner.Add(1)
			go func() {
				defer inner.Done()
			}()
		}
		inner.Wait()
	}()
	wg.Wait()
}

func suppressedHeldOpen() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(1) //maldlint:ignore wgadd fixture: outer Add already holds the counter open
		go func() { defer wg.Done() }()
	}()
	wg.Wait()
}

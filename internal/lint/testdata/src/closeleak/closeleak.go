// Package fixture seeds violations for the closeleak check: files
// leaked on an early return or by falling off the function end, plus
// defer-close, explicit per-path close, ownership hand-off and
// suppressed cases. The check reports at the open site.
package fixture

import (
	"errors"
	"fmt"
	"os"
)

func badEarlyReturn(p string, big bool) error {
	f, err := os.Open(p) // want closeleak
	if err != nil {
		return err
	}
	if big {
		return errors.New("too big") // f leaks on this path
	}
	return f.Close()
}

func badFallOff(p string, cond bool) {
	f, err := os.Open(p) // want closeleak
	if err != nil {
		return
	}
	if cond {
		_ = f.Close()
	}
	// cond == false falls off the end with f still open.
}

func goodDefer(p string, big bool) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer f.Close()
	if big {
		return errors.New("too big")
	}
	return nil
}

func goodExplicit(p string, big bool) error {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	if big {
		_ = f.Close()
		return errors.New("too big")
	}
	return f.Close()
}

func goodHandoffReturn(p string) (*os.File, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	return f, nil // ownership moves to the caller
}

func goodHandoffCall(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	return consume(f) // consume takes over the close obligation
}

func consume(f *os.File) error {
	defer f.Close()
	var n int
	_, err := fmt.Fscan(f, &n)
	return err
}

func suppressedLeak(p string, big bool) error {
	f, err := os.Open(p) //maldlint:ignore closeleak fixture exercises suppression
	if err != nil {
		return err
	}
	if big {
		return errors.New("too big")
	}
	return f.Close()
}

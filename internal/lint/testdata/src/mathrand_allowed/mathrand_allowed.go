// Package fixture stands in for internal/mathx: when its import path is
// on the check's Allow list, math/rand imports are permitted (the RNG
// home package may wrap or benchmark against the stdlib generator).
package fixture

import "math/rand"

func wrapped() int {
	return rand.Int()
}

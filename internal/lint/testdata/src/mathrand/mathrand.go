// Package fixture seeds violations for the mathrand check: forbidden
// math/rand imports and time-seeded generators, plus negative and
// suppressed cases.
package fixture

import (
	"math/rand" // want mathrand
	"time"
)

type config struct {
	Seed uint64
}

func badImportUse() int {
	return rand.Int()
}

func badTimeSeed() {
	rand.Seed(time.Now().UnixNano()) // want mathrand
}

func badSeedField() config {
	return config{Seed: uint64(time.Now().UnixNano())} // want mathrand
}

func goodFixedSeed() config {
	return config{Seed: 42}
}

func suppressedTimeSeed() {
	rand.Seed(time.Now().UnixNano()) //maldlint:ignore mathrand fixture exercises suppression
}

// Package fixture seeds violations for the loopcapture check:
// goroutines referencing range and classic for-loop variables, plus the
// required pass-as-argument style and a suppressed case.
package fixture

import "sync"

func badRangeCapture(items []int) {
	var wg sync.WaitGroup
	results := make([]int, len(items))
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = i * 2 // want loopcapture
		}()
	}
	wg.Wait()
}

func badClassicCapture(n int) {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			ch <- i // want loopcapture
		}()
	}
}

func goodParamStyle(items []int) {
	var wg sync.WaitGroup
	results := make([]int, len(items))
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = i * 2
		}(i)
	}
	wg.Wait()
}

// badChunkBounds is the parallel kernel-row fan-out shape with the
// chunk's loop variable referenced inside the goroutine instead of
// passed as an argument.
func badChunkBounds(row []float64, workers int) {
	n := len(row)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := lo; j < hi; j++ { // want loopcapture
				row[j] = 0
			}
		}()
	}
	wg.Wait()
}

// goodChunkBounds passes the chunk bounds as goroutine arguments, the
// style computeRow uses for its disjoint row ranges.
func goodChunkBounds(row []float64, workers int) {
	n := len(row)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				row[j] = 0
			}
		}(lo, hi)
	}
	wg.Wait()
}

func suppressedCapture(items []int) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	sum := 0
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			sum += i //maldlint:ignore loopcapture fixture: per-iteration semantics intended
			mu.Unlock()
		}()
	}
	wg.Wait()
}

// Package fixture seeds violations for the atomicalign check: 64-bit
// atomic operations on struct fields that land at a 4-byte offset
// under 386 layout, plus well-ordered, local-variable, slice-element
// and suppressed cases.
package fixture

import "sync/atomic"

type badLayout struct {
	count uint32
	total uint64 // offset 4 under 386 layout
}

type goodLayout struct {
	total uint64 // 64-bit fields first: offset 0
	count uint32
}

type paddedLayout struct {
	count uint32
	_     uint32 // pad to an 8-byte boundary
	total uint64
}

func badAdd(s *badLayout) {
	atomic.AddUint64(&s.total, 1) // want atomicalign
}

func badLoad(s *badLayout) uint64 {
	return atomic.LoadUint64(&s.total) // want atomicalign
}

func goodAdd(s *goodLayout) {
	atomic.AddUint64(&s.total, 1)
}

func goodPadded(s *paddedLayout) {
	atomic.AddUint64(&s.total, 1)
}

func goodLocal() uint64 {
	var x uint64
	atomic.AddUint64(&x, 1)
	return x
}

func goodSliceElem(xs []uint64) {
	atomic.AddUint64(&xs[0], 1)
}

func suppressedAdd(s *badLayout) {
	atomic.AddUint64(&s.total, 1) //maldlint:ignore atomicalign fixture exercises suppression
}

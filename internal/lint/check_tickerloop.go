package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TickerLoopCheck flags timer allocation inside loop bodies:
// time.After, time.Tick, time.NewTicker, and time.NewTimer called once
// per iteration. time.After is the classic one — each call allocates a
// timer that is not collected until it fires, so a tight select loop
// (the serve daemon's reload watcher, the stream driver's checkpoint
// cadence) accumulates live timers and wakes the runtime timer goroutine
// for every stale one.
type TickerLoopCheck struct{}

// Name implements Check.
func (*TickerLoopCheck) Name() string { return "tickerloop" }

// Doc implements Check.
func (*TickerLoopCheck) Doc() string {
	return "flag time.After/Tick/NewTicker/NewTimer allocated inside loop bodies"
}

// Explain implements Check.
func (*TickerLoopCheck) Explain() string {
	return `time.After(d) allocates a timer that stays live until it fires even
when the select took another branch, so a loop like

    for {
        select {
        case m := <-in:
            handle(m)
        case <-time.After(timeout):   // new timer every iteration
            return
        }
    }

accumulates one pending timer per message and keeps the runtime timer
heap busy retiring them. time.Tick leaks a whole ticker (it has no Stop
handle), and NewTicker/NewTimer per iteration usually mean the Stop
call is missing or the allocation belongs above the loop.

tickerloop flags any of those four calls lexically inside a for or
range body. Hoist the allocation: one NewTicker (with defer Stop)
above the loop, or one NewTimer with Reset per iteration when the
deadline really must restart.

Test files are skipped — short-lived timers in tests are harmless.`
}

// Severity implements Check.
func (*TickerLoopCheck) Severity() Severity { return SeverityWarning }

// timerAllocators are the time-package calls that allocate a timer or
// ticker per invocation.
var timerAllocators = map[string]bool{
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// Run implements Check.
func (c *TickerLoopCheck) Run(p *Pass) {
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch x := n.(type) {
			case *ast.ForStmt:
				body = x.Body
			case *ast.RangeStmt:
				body = x.Body
			default:
				return true
			}
			c.checkBody(p, body)
			return true
		})
	}
}

// checkBody flags timer allocations directly inside body. Nested loops
// are not descended into here — the outer Inspect visits them and they
// report against their own body, closest loop wins.
func (c *TickerLoopCheck) checkBody(p *Pass, body *ast.BlockStmt) {
	inspectShallowNoLoops(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(p.Info, call)
		if obj == nil || objPkgPath(obj) != "time" || !timerAllocators[obj.Name()] {
			return true
		}
		// Methods that share a name with the allocators (time.Time.After)
		// allocate nothing; only the package-level functions count.
		fn, isFn := obj.(*types.Func)
		if !isFn {
			return true
		}
		if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() != nil {
			return true
		}
		p.Reportf(call.Pos(),
			"time.%s inside a loop allocates a timer every iteration; hoist it above the loop (NewTicker + defer Stop, or NewTimer + Reset)",
			obj.Name())
		return true
	})
}

// inspectShallowNoLoops walks root without descending into nested
// function literals or nested loops.
func inspectShallowNoLoops(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		return fn(n)
	})
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetPathCheck enforces the //maldlint:deterministic annotation
// contract: packages whose model state and output must be bit-identical
// run to run (pipeline, line, core, stream) may not consult the wall
// clock, draw from the global math/rand generators, or let map
// iteration order choose what they return. The compiler cannot see the
// bit-identical-merge and byte-identical-resume promises those packages
// make (PR 3/5); this check can.
//
// Inside an annotated package's non-test files it flags:
//
//   - calls to time.Now (wall-clock state; observability-only uses get
//     a //maldlint:ignore detpath with rationale);
//   - any reference to math/rand or math/rand/v2 (belt to mathrand's
//     suspenders: that check bans the import, this one the use sites);
//   - a return inside a range-over-map body whose result expressions
//     mention the iteration variables — the function's output is then
//     chosen by randomized map order;
//   - a break inside a range-over-map body when the body also assigns
//     the iteration variables to outer state: the loop keeps an
//     arbitrary element.
type DetPathCheck struct{}

// Name implements Check.
func (*DetPathCheck) Name() string { return "detpath" }

// Doc implements Check.
func (*DetPathCheck) Doc() string {
	return "forbid wall clock, global rand, and order-dependent map exits in //maldlint:deterministic packages"
}

// Explain implements Check.
func (*DetPathCheck) Explain() string {
	return `Packages annotated //maldlint:deterministic (pipeline, line, core,
stream) promise bit-identical state and output for identical input —
that promise is what makes sharded merges reproducible and resumed
alert feeds byte-identical. detpath flags the three ways code silently
breaks it:

  1. time.Now() — wall-clock values leak nondeterminism into state.
     Metrics-only uses are fine; suppress them with
     //maldlint:ignore detpath <rationale>.
  2. math/rand / math/rand/v2 references — all randomness must come
     from seeded mathx.RNG streams.
  3. return <expr mentioning k or v> inside 'for k, v := range m' over
     a map, or break after assigning k/v outward: the map's randomized
     iteration order then decides the function's result. Iterate
     sorted keys, or restructure so the result is order-insensitive.

The check only runs in annotated packages and skips _test.go files.`
}

// Severity implements Check.
func (*DetPathCheck) Severity() Severity { return SeverityError }

// Run implements Check.
func (c *DetPathCheck) Run(p *Pass) {
	if !p.Deterministic {
		return
	}
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if obj := calleeObject(p.Info, x); obj != nil &&
					objPkgPath(obj) == "time" && obj.Name() == "Now" {
					p.Reportf(x.Pos(),
						"time.Now in a deterministic package: wall-clock values must not feed model state or output")
				}
			case *ast.Ident:
				if obj := p.Info.Uses[x]; obj != nil {
					if pkg := objPkgPath(obj); pkg == "math/rand" || pkg == "math/rand/v2" {
						p.Reportf(x.Pos(),
							"%s.%s in a deterministic package: draw from seeded mathx.RNG streams instead", pkg, obj.Name())
					}
				}
			case *ast.RangeStmt:
				if _, isMap := typeUnderlying(p, x.X).(*types.Map); isMap {
					c.checkMapExit(p, x)
				}
			}
			return true
		})
	}
}

// checkMapExit flags order-dependent exits from a map-range body.
func (*DetPathCheck) checkMapExit(p *Pass, rs *ast.RangeStmt) {
	vars := rangeVarObjects(p, rs)
	if len(vars) == 0 {
		return
	}
	assignsOut := false
	inspectShallow(rs.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range assign.Rhs {
			for _, v := range vars {
				if mentionsObject(p, rhs, v) {
					// Assigning k/v into state that outlives the loop is
					// only order-dependent when the loop can stop early;
					// remember it and let a break decide.
					assignsOut = true
				}
			}
		}
		return true
	})
	inspectShallow(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				for _, v := range vars {
					if mentionsObject(p, res, v) {
						p.Reportf(x.Pos(),
							"return inside a map range yields a value chosen by randomized iteration order; iterate sorted keys")
						return false
					}
				}
			}
		case *ast.BranchStmt:
			if x.Tok.String() == "break" && assignsOut {
				p.Reportf(x.Pos(),
					"break inside a map range keeps an arbitrary element; iterate sorted keys or make the result order-insensitive")
				return false
			}
		}
		return true
	})
}

// rangeVarObjects returns the objects of the range statement's key and
// value variables (skipping blanks).
func rangeVarObjects(p *Pass, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id == nil || id.Name == "_" {
			continue
		}
		if obj := p.Info.ObjectOf(id); obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

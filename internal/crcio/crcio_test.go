package crcio

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/faultio"
)

func sealed(t *testing.T, payload string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := io.WriteString(w, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrailer(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := sealed(t, "hello, stream")
	r := NewReader(bytes.NewReader(data))
	got := make([]byte, len("hello, stream"))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyTrailer(); err != nil {
		t.Fatalf("verify failed on intact stream: %v", err)
	}
}

func TestEveryBitFlipDetected(t *testing.T) {
	data := sealed(t, "payload under test")
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			flipped := bytes.Clone(data)
			flipped[i] ^= 1 << bit
			r := NewReader(bytes.NewReader(flipped))
			buf := make([]byte, len(data)-4)
			if _, err := io.ReadFull(r, buf); err != nil {
				t.Fatalf("payload read failed: %v", err)
			}
			if err := r.VerifyTrailer(); !errors.Is(err, ErrChecksum) {
				t.Fatalf("flip at byte %d bit %d: err = %v, want ErrChecksum", i, bit, err)
			}
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	data := sealed(t, "payload under test")
	// Cut inside the trailer: the payload reads fine, the trailer is
	// short.
	cut := data[:len(data)-2]
	r := NewReader(bytes.NewReader(cut))
	buf := make([]byte, len(data)-4)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyTrailer(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated trailer: err = %v, want unexpected EOF", err)
	}
}

func TestReadErrorPropagates(t *testing.T) {
	data := sealed(t, "payload under test")
	r := NewReader(faultio.FailReader(bytes.NewReader(data), int64(len(data)-3)))
	buf := make([]byte, len(data)-4)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyTrailer(); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("injected read error lost: %v", err)
	}
}

// TestGobBoundaries is the property the model and checkpoint formats
// rely on: stacked gob decoders over one Reader consume exactly their
// own messages, leaving the trailer in place and the checksum
// well-defined.
func TestGobBoundaries(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := gob.NewEncoder(w).Encode("first"); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(w).Encode([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrailer(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	var s string
	if err := gob.NewDecoder(r).Decode(&s); err != nil || s != "first" {
		t.Fatalf("first part: %q err=%v", s, err)
	}
	var ints []int
	if err := gob.NewDecoder(r).Decode(&ints); err != nil || len(ints) != 3 {
		t.Fatalf("second part: %v err=%v", ints, err)
	}
	if err := r.VerifyTrailer(); err != nil {
		t.Fatalf("trailer after gob parts: %v", err)
	}
}

// TestNonByteReaderSource checks the bufio fallback path for readers
// that cannot hand out single bytes.
func TestNonByteReaderSource(t *testing.T) {
	data := sealed(t, "abc")
	r := NewReader(struct{ io.Reader }{strings.NewReader(string(data))})
	buf := make([]byte, 3)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyTrailer(); err != nil {
		t.Fatal(err)
	}
}

// Package crcio frames persistence streams with a CRC-32 (IEEE)
// integrity trailer so truncation and bit-rot are detected
// deterministically instead of relying on whatever error shape a gob
// decoder happens to produce.
//
// A Writer hashes every byte written through it; WriteTrailer appends
// the 4-byte big-endian checksum (itself excluded from the hash). A
// Reader hashes every byte read through it and implements io.ByteReader,
// so stacked gob decoders consume exactly the bytes they need and the
// trailer position stays well-defined; VerifyTrailer then reads the
// 4-byte checksum and compares it against the hash of everything read
// before it.
package crcio

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrChecksum reports a trailer that does not match the stream's
// content: the file was corrupted (bit-rot, torn write) after it was
// sealed.
var ErrChecksum = errors.New("crcio: checksum mismatch")

// Writer hashes everything written through it.
type Writer struct {
	w   io.Writer
	sum uint32
}

// NewWriter returns a hashing writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write implements io.Writer, folding p into the running checksum.
func (cw *Writer) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.sum = crc32.Update(cw.sum, crc32.IEEETable, p[:n])
	return n, err
}

// Sum32 returns the checksum of everything written so far.
func (cw *Writer) Sum32() uint32 { return cw.sum }

// WriteTrailer appends the current checksum as 4 big-endian bytes,
// written directly to the underlying writer (the trailer does not hash
// itself). The stream is complete after this call.
func (cw *Writer) WriteTrailer() error {
	var buf [4]byte
	putUint32(buf[:], cw.sum)
	if _, err := cw.w.Write(buf[:]); err != nil {
		return fmt.Errorf("crcio: writing trailer: %w", err)
	}
	return nil
}

// Reader hashes everything read through it. It implements io.ByteReader
// so gob decoders layered on top read exact message boundaries instead
// of buffering ahead into the trailer.
type Reader struct {
	r   io.Reader
	br  io.ByteReader
	sum uint32
}

// NewReader returns a hashing reader over r. If r does not implement
// io.ByteReader it is wrapped in a bufio.Reader, which reads ahead from
// r; hand NewReader the start of a stream and do not read from r
// directly afterwards.
func NewReader(r io.Reader) *Reader {
	br, ok := r.(io.ByteReader)
	if !ok {
		buf := bufio.NewReader(r)
		return &Reader{r: buf, br: buf}
	}
	return &Reader{r: r, br: br}
}

// Read implements io.Reader, folding the bytes read into the checksum.
func (cr *Reader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.sum = crc32.Update(cr.sum, crc32.IEEETable, p[:n])
	return n, err
}

// ReadByte implements io.ByteReader.
func (cr *Reader) ReadByte() (byte, error) {
	b, err := cr.br.ReadByte()
	if err != nil {
		return b, err
	}
	cr.sum = crc32.Update(cr.sum, crc32.IEEETable, []byte{b})
	return b, nil
}

// Sum32 returns the checksum of everything read so far.
func (cr *Reader) Sum32() uint32 { return cr.sum }

// VerifyTrailer reads the 4-byte trailer and compares it against the
// checksum of every byte read before it. A missing or partial trailer
// reports an unexpected-EOF error; a present-but-wrong trailer reports
// ErrChecksum.
func (cr *Reader) VerifyTrailer() error {
	want := cr.sum
	var buf [4]byte
	if _, err := io.ReadFull(cr, buf[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("crcio: stream truncated before trailer: %w", io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("crcio: reading trailer: %w", err)
	}
	if got := getUint32(buf[:]); got != want {
		return fmt.Errorf("%w: stream %08x, trailer %08x", ErrChecksum, want, got)
	}
	return nil
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getUint32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

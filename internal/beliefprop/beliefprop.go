// Package beliefprop implements malicious-domain detection by loopy
// belief propagation over the host-domain association graph, following
// the graph-inference approach of Manadhata et al. (ESORICS 2014) that
// the paper discusses as the representative graph-based solution (§9).
//
// The method needs no feature engineering and no embeddings: known
// malicious and benign domains anchor prior beliefs, and the bipartite
// host-domain structure propagates them — a host that talks to malicious
// domains becomes suspicious, and domains queried by suspicious hosts
// inherit suspicion. It serves as a second baseline for the paper's
// comparison: behavioral embeddings versus direct graph inference.
//
// The model is a pairwise Markov random field over domain and host
// vertices with binary states {benign, malicious}. Messages follow the
// standard sum-product update
//
//	m_{u→v}(x_v) ∝ Σ_{x_u} φ(x_u) ψ(x_u, x_v) Π_{w∈N(u)\v} m_{w→u}(x_u)
//
// with an edge potential ψ that rewards agreement. Beliefs converge in a
// few iterations on DNS graphs; damping guards against oscillation.
package beliefprop

import (
	"errors"
	"fmt"
	"math"
)

// Config parameterizes inference.
type Config struct {
	// EdgePotential is the agreement strength ε in ψ = [[ε, 1−ε], [1−ε, ε]]
	// (default 0.51 per Manadhata et al.: slightly homophilic, which
	// keeps loopy BP stable on dense graphs).
	EdgePotential float64
	// MaxIterations bounds message-passing rounds (default 15).
	MaxIterations int
	// Damping mixes old messages into new ones (0 = none, default 0.1).
	Damping float64
	// Tolerance stops iteration when the largest belief change falls
	// below it (default 1e-4).
	Tolerance float64
	// MaliciousPrior / BenignPrior are the anchored beliefs for seed
	// domains (defaults 0.99 / 0.01); unlabeled vertices start at 0.5.
	MaliciousPrior float64
	BenignPrior    float64
}

func (c Config) withDefaults() Config {
	if c.EdgePotential <= 0 || c.EdgePotential >= 1 {
		c.EdgePotential = 0.51
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 15
	}
	if c.Damping < 0 || c.Damping >= 1 {
		c.Damping = 0.1
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-4
	}
	if c.MaliciousPrior <= 0 || c.MaliciousPrior >= 1 {
		c.MaliciousPrior = 0.99
	}
	if c.BenignPrior <= 0 || c.BenignPrior >= 1 {
		c.BenignPrior = 0.01
	}
	return c
}

// halfEdge links a vertex to a neighbor together with the index of the
// reverse half-edge in the neighbor's adjacency — the key bookkeeping
// for O(1) cavity message lookup.
type halfEdge struct {
	to  int32
	rev int32
}

// Graph is the host-domain association graph for inference. Build one
// with NewGraph and AddEdge; vertices are created on first use.
type Graph struct {
	domainID map[string]int
	hostID   map[string]int
	domains  []string
	hosts    []string

	domainAdj [][]halfEdge
	hostAdj   [][]halfEdge
	edgeSeen  map[[2]int32]struct{}
}

// NewGraph returns an empty association graph.
func NewGraph() *Graph {
	return &Graph{
		domainID: make(map[string]int),
		hostID:   make(map[string]int),
		edgeSeen: make(map[[2]int32]struct{}),
	}
}

// AddEdge records that host queried domain. Duplicate edges collapse.
func (g *Graph) AddEdge(host, domain string) {
	di, ok := g.domainID[domain]
	if !ok {
		di = len(g.domains)
		g.domainID[domain] = di
		g.domains = append(g.domains, domain)
		g.domainAdj = append(g.domainAdj, nil)
	}
	hi, ok := g.hostID[host]
	if !ok {
		hi = len(g.hosts)
		g.hostID[host] = hi
		g.hosts = append(g.hosts, host)
		g.hostAdj = append(g.hostAdj, nil)
	}
	key := [2]int32{int32(di), int32(hi)}
	if _, dup := g.edgeSeen[key]; dup {
		return
	}
	g.edgeSeen[key] = struct{}{}
	g.domainAdj[di] = append(g.domainAdj[di],
		halfEdge{to: int32(hi), rev: int32(len(g.hostAdj[hi]))})
	g.hostAdj[hi] = append(g.hostAdj[hi],
		halfEdge{to: int32(di), rev: int32(len(g.domainAdj[di]) - 1)})
}

// Domains returns the number of domain vertices.
func (g *Graph) Domains() int { return len(g.domains) }

// Hosts returns the number of host vertices.
func (g *Graph) Hosts() int { return len(g.hosts) }

// Edges returns the number of distinct host-domain edges.
func (g *Graph) Edges() int { return len(g.edgeSeen) }

// Result holds converged beliefs.
type Result struct {
	// DomainBelief maps each domain to its malicious-probability belief.
	DomainBelief map[string]float64
	// HostBelief maps host identities to compromise beliefs.
	HostBelief map[string]float64
	// Iterations actually run.
	Iterations int
	// Converged reports whether Tolerance was reached before
	// MaxIterations.
	Converged bool
}

// ErrNoSeeds is returned when the seed map anchors no graph vertex.
var ErrNoSeeds = errors.New("beliefprop: no seed domain present in the graph")

// Run performs loopy belief propagation. seeds maps known domains to
// labels (1 = malicious, 0 = benign); seed domains absent from the graph
// are ignored.
func Run(g *Graph, seeds map[string]int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	nd, nh := len(g.domains), len(g.hosts)
	if nd == 0 {
		return nil, fmt.Errorf("beliefprop: empty graph")
	}

	// Domain priors (probability of malicious).
	prior := make([]float64, nd)
	for i := range prior {
		prior[i] = 0.5
	}
	anchored := 0
	for d, label := range seeds {
		if di, ok := g.domainID[d]; ok {
			if label == 1 {
				prior[di] = cfg.MaliciousPrior
			} else {
				prior[di] = cfg.BenignPrior
			}
			anchored++
		}
	}
	if anchored == 0 {
		return nil, ErrNoSeeds
	}

	// Messages hold the malicious-state component of a normalized
	// 2-vector; msgDH[d][k] flows along domainAdj[d][k], msgHD[h][k]
	// along hostAdj[h][k].
	msgDH := makeMessages(g.domainAdj)
	msgHD := makeMessages(g.hostAdj)

	eps := cfg.EdgePotential
	// propagate applies the edge potential to an incoming message's
	// malicious component.
	propagate := func(in float64) float64 {
		return eps*in + (1-eps)*(1-in)
	}

	domBelief := make([]float64, nd)
	hostBelief := make([]float64, nh)
	iterations := 0
	converged := false
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		iterations = iter + 1

		// Hosts: combine incoming domain messages (flat host prior),
		// then emit cavity messages back to each domain.
		for h, adj := range g.hostAdj {
			logM, logB := 0.0, 0.0
			for _, e := range adj {
				pm := propagate(msgDH[e.to][e.rev])
				logM += math.Log(pm)
				logB += math.Log(1 - pm)
			}
			hostBelief[h] = logistic(logM - logB)
			for k, e := range adj {
				pm := propagate(msgDH[e.to][e.rev])
				out := logistic((logM - math.Log(pm)) - (logB - math.Log(1-pm)))
				msgHD[h][k] = mix(msgHD[h][k], out, cfg.Damping)
			}
		}

		// Domains: combine prior with incoming host messages, then emit
		// cavity messages back to each host.
		maxDelta := 0.0
		for d, adj := range g.domainAdj {
			logM := math.Log(prior[d])
			logB := math.Log(1 - prior[d])
			for _, e := range adj {
				pm := propagate(msgHD[e.to][e.rev])
				logM += math.Log(pm)
				logB += math.Log(1 - pm)
			}
			nb := logistic(logM - logB)
			if delta := math.Abs(nb - domBelief[d]); delta > maxDelta {
				maxDelta = delta
			}
			domBelief[d] = nb
			for k, e := range adj {
				pm := propagate(msgHD[e.to][e.rev])
				out := logistic((logM - math.Log(pm)) - (logB - math.Log(1-pm)))
				msgDH[d][k] = mix(msgDH[d][k], out, cfg.Damping)
			}
		}
		if maxDelta < cfg.Tolerance {
			converged = true
			break
		}
	}

	res := &Result{
		DomainBelief: make(map[string]float64, nd),
		HostBelief:   make(map[string]float64, nh),
		Iterations:   iterations,
		Converged:    converged,
	}
	for d, name := range g.domains {
		res.DomainBelief[name] = domBelief[d]
	}
	for h, name := range g.hosts {
		res.HostBelief[name] = hostBelief[h]
	}
	return res, nil
}

func makeMessages(adj [][]halfEdge) [][]float64 {
	out := make([][]float64, len(adj))
	for i := range adj {
		out[i] = make([]float64, len(adj[i]))
		for k := range out[i] {
			out[i][k] = 0.5
		}
	}
	return out
}

// logistic maps a log-odds value to a probability, clamped away from the
// exact endpoints so downstream logs stay finite.
func logistic(logOdds float64) float64 {
	p := 1 / (1 + math.Exp(-logOdds))
	const floor = 1e-9
	if p < floor {
		return floor
	}
	if p > 1-floor {
		return 1 - floor
	}
	return p
}

func mix(old, new, damping float64) float64 {
	return damping*old + (1-damping)*new
}

package beliefprop_test

import (
	"fmt"

	"repro/internal/beliefprop"
)

func ExampleRun() {
	g := beliefprop.NewGraph()
	// Two hosts query a known-bad domain and an unknown one.
	for _, h := range []string{"laptop-1", "laptop-2"} {
		g.AddEdge(h, "seed.bad")
		g.AddEdge(h, "unknown.example")
	}
	// A third host only visits a known-good site.
	g.AddEdge("laptop-3", "seed.good")

	res, err := beliefprop.Run(g,
		map[string]int{"seed.bad": 1, "seed.good": 0},
		beliefprop.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("unknown.example suspicious: %v\n", res.DomainBelief["unknown.example"] > 0.5)
	// Output:
	// unknown.example suspicious: true
}

package beliefprop

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/eval"
	"repro/internal/mathx"
)

// star builds hosts h0..h{n-1} all querying the same domain set.
func addClique(g *Graph, hosts, domains []string) {
	for _, h := range hosts {
		for _, d := range domains {
			g.AddEdge(h, d)
		}
	}
}

func TestGuiltPropagatesThroughSharedHosts(t *testing.T) {
	g := NewGraph()
	// Infected cluster: 3 hosts query seed.bad plus two unknown domains.
	addClique(g, []string{"h1", "h2", "h3"}, []string{"seed.bad", "unknown1.bad", "unknown2.bad"})
	// Clean cluster: 3 other hosts query benign domains.
	addClique(g, []string{"h4", "h5", "h6"}, []string{"seed.good", "unknown.good"})

	res, err := Run(g, map[string]int{"seed.bad": 1, "seed.good": 0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DomainBelief["unknown1.bad"] <= res.DomainBelief["unknown.good"] {
		t.Errorf("guilt did not propagate: bad=%.4f good=%.4f",
			res.DomainBelief["unknown1.bad"], res.DomainBelief["unknown.good"])
	}
	if res.DomainBelief["unknown1.bad"] <= 0.5 {
		t.Errorf("co-queried domain belief %.4f not above neutral", res.DomainBelief["unknown1.bad"])
	}
	if res.DomainBelief["unknown.good"] >= 0.5 {
		t.Errorf("benign-cluster domain belief %.4f not below neutral", res.DomainBelief["unknown.good"])
	}
	// Hosts near the malicious seed should look compromised.
	if res.HostBelief["h1"] <= res.HostBelief["h4"] {
		t.Errorf("host beliefs: infected %.4f <= clean %.4f",
			res.HostBelief["h1"], res.HostBelief["h4"])
	}
}

func TestSeedBeliefsStayAnchored(t *testing.T) {
	g := NewGraph()
	addClique(g, []string{"h1", "h2"}, []string{"seed.bad", "x.com"})
	res, err := Run(g, map[string]int{"seed.bad": 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DomainBelief["seed.bad"] < 0.9 {
		t.Errorf("seed belief decayed to %.4f", res.DomainBelief["seed.bad"])
	}
}

func TestIsolatedDomainStaysNeutral(t *testing.T) {
	g := NewGraph()
	g.AddEdge("h1", "seed.bad")
	g.AddEdge("h2", "lonely.org") // no connection to the seed
	res, err := Run(g, map[string]int{"seed.bad": 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := res.DomainBelief["lonely.org"]
	if b < 0.45 || b > 0.55 {
		t.Errorf("disconnected domain belief %.4f, want ≈0.5", b)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Run(NewGraph(), map[string]int{"a": 1}, Config{}); err == nil {
		t.Error("empty graph accepted")
	}
	g := NewGraph()
	g.AddEdge("h", "present.com")
	if _, err := Run(g, map[string]int{"absent.com": 1}, Config{}); !errors.Is(err, ErrNoSeeds) {
		t.Errorf("no-seed error = %v", err)
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	g := NewGraph()
	g.AddEdge("h", "d.com")
	g.AddEdge("h", "d.com")
	g.AddEdge("h", "d.com")
	if g.Edges() != 1 {
		t.Fatalf("Edges = %d, want 1", g.Edges())
	}
	if g.Domains() != 1 || g.Hosts() != 1 {
		t.Fatalf("vertices = %d/%d, want 1/1", g.Domains(), g.Hosts())
	}
}

func TestConvergenceReported(t *testing.T) {
	g := NewGraph()
	addClique(g, []string{"h1", "h2"}, []string{"a.com", "b.com"})
	res, err := Run(g, map[string]int{"a.com": 1}, Config{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("tiny graph did not converge in %d iterations", res.Iterations)
	}
	if res.Iterations <= 0 || res.Iterations > 50 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

// Synthetic ranking quality: plant family structure and verify BP ranks
// held-out malicious domains above benign ones.
func TestRankingQualityOnPlantedFamilies(t *testing.T) {
	rng := mathx.NewRNG(7)
	g := NewGraph()

	// 6 malware families: 6 hosts sharing 10 domains each.
	var malicious []string
	for f := 0; f < 6; f++ {
		var hosts, domains []string
		for i := 0; i < 6; i++ {
			hosts = append(hosts, fmt.Sprintf("inf-%d-%d", f, i))
		}
		for i := 0; i < 10; i++ {
			d := fmt.Sprintf("mal-%d-%d.bad", f, i)
			domains = append(domains, d)
			malicious = append(malicious, d)
		}
		addClique(g, hosts, domains)
	}
	// Benign background: 120 hosts querying random benign domains.
	var benign []string
	for i := 0; i < 200; i++ {
		benign = append(benign, fmt.Sprintf("ben-%d.com", i))
	}
	for h := 0; h < 120; h++ {
		host := fmt.Sprintf("user-%d", h)
		for q := 0; q < 12; q++ {
			g.AddEdge(host, benign[rng.Intn(len(benign))])
		}
		// Infected user hosts also browse benign sites.
		if h < 36 {
			g.AddEdge(fmt.Sprintf("inf-%d-%d", h%6, h/6), benign[rng.Intn(len(benign))])
		}
	}

	// Seed 2 malicious domains per family + 30 benign.
	seeds := map[string]int{}
	for f := 0; f < 6; f++ {
		seeds[fmt.Sprintf("mal-%d-0.bad", f)] = 1
		seeds[fmt.Sprintf("mal-%d-1.bad", f)] = 1
	}
	for i := 0; i < 30; i++ {
		seeds[benign[i]] = 0
	}
	res, err := Run(g, seeds, Config{})
	if err != nil {
		t.Fatal(err)
	}

	var scores []float64
	var labels []int
	for _, d := range malicious {
		if _, isSeed := seeds[d]; isSeed {
			continue
		}
		scores = append(scores, res.DomainBelief[d])
		labels = append(labels, 1)
	}
	for _, d := range benign[30:] {
		scores = append(scores, res.DomainBelief[d])
		labels = append(labels, 0)
	}
	auc, err := eval.AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.9 {
		t.Errorf("BP ranking AUC %.3f on planted families, want >= 0.9", auc)
	}
	t.Logf("BP AUC = %.3f over %d domains", auc, len(scores))
}

func BenchmarkRun(b *testing.B) {
	rng := mathx.NewRNG(3)
	g := NewGraph()
	for f := 0; f < 10; f++ {
		for i := 0; i < 8; i++ {
			for j := 0; j < 12; j++ {
				g.AddEdge(fmt.Sprintf("h%d-%d", f, i), fmt.Sprintf("d%d-%d.x", f, j))
			}
		}
	}
	for h := 0; h < 200; h++ {
		for q := 0; q < 10; q++ {
			g.AddEdge(fmt.Sprintf("u%d", h), fmt.Sprintf("b%d.com", rng.Intn(300)))
		}
	}
	seeds := map[string]int{"d0-0.x": 1, "b0.com": 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, seeds, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package etld extracts effective second-level domains (e2LDs) from fully
// qualified domain names (FQDNs) using the public-suffix algorithm.
//
// The paper aggregates all DNS behavioral modeling at the e2LD level:
// "maps.google.com" and "mail.google.com" both collapse to "google.com",
// which reflects domain ownership and is the standard aggregation unit in
// the malicious-domain detection literature.
//
// The rule table embedded here is a representative snapshot of the public
// suffix list covering the TLDs that appear in campus traffic and in the
// paper's cluster tables (.bid spam clusters, .ws Conficker DGA clusters,
// country-code suffixes with wildcard and exception rules). The matching
// algorithm is the complete PSL algorithm — normal, wildcard ("*.ck") and
// exception ("!www.ck") rules — so the table can be swapped for a full
// list without code changes.
package etld

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ErrNoEligibleDomain is returned when an input has no registrable e2LD,
// for example when the name is itself a public suffix or is empty.
var ErrNoEligibleDomain = errors.New("etld: name has no eligible e2LD")

// Table is a compiled public-suffix rule table. The zero value matches
// nothing; construct one with NewTable or use the package-level Default.
type Table struct {
	normal     map[string]bool // "com", "co.uk"
	wildcard   map[string]bool // "ck" for rule "*.ck"
	exceptions map[string]bool // "www.ck" for rule "!www.ck"
}

// NewTable compiles a slice of public-suffix rules in PSL syntax:
// plain suffixes ("co.uk"), wildcard rules ("*.ck"), and exception rules
// ("!www.ck"). Rules are matched case-insensitively.
func NewTable(rules []string) *Table {
	t := &Table{
		normal:     make(map[string]bool),
		wildcard:   make(map[string]bool),
		exceptions: make(map[string]bool),
	}
	for _, r := range rules {
		r = strings.ToLower(strings.TrimSpace(r))
		switch {
		case r == "" || strings.HasPrefix(r, "//"):
		case strings.HasPrefix(r, "!"):
			t.exceptions[r[1:]] = true
		case strings.HasPrefix(r, "*."):
			t.wildcard[r[2:]] = true
		default:
			t.normal[r] = true
		}
	}
	return t
}

// defaultRules is the embedded public-suffix snapshot. It intentionally
// includes every TLD the traffic generator emits plus the multi-label and
// wildcard cases needed to exercise the full algorithm.
var defaultRules = []string{
	// Generic TLDs.
	"com", "net", "org", "info", "biz", "edu", "gov", "mil", "int",
	"io", "co", "me", "tv", "cc", "ws", "bid", "top", "xyz", "club",
	"site", "online", "pw", "link", "click", "download", "work", "loan",
	"win", "men", "date", "racing", "stream", "review", "trade", "party",
	"science", "accountant", "faith", "cricket", "space", "tech", "store",
	"app", "dev", "cloud", "ai", "sh", "gg", "to", "ly", "am", "fm", "im",
	// Country codes with registrations at the second level.
	"de", "fr", "nl", "it", "es", "se", "no", "fi", "dk", "pl", "cz",
	"ch", "at", "be", "ru", "su", "ua", "in", "cn", "hk", "tw", "sg",
	"my", "th", "vn", "ph", "id", "kr", "mx", "br", "ar", "cl", "ca",
	"us", "eu", "ie", "pt", "gr", "ro", "hu", "tr", "il", "za", "nz",
	// Multi-label public suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk", "sch.uk",
	"uk.co", // private-registry style suffix; makes bbc.uk.co an e2LD as in the paper
	"com.cn", "net.cn", "org.cn", "edu.cn", "gov.cn", "ac.cn",
	"com.au", "net.au", "org.au", "edu.au", "gov.au",
	"co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp", "ad.jp",
	"co.kr", "or.kr", "ac.kr",
	"com.br", "net.br", "org.br",
	"com.tw", "org.tw",
	"co.in", "net.in", "org.in", "ac.in",
	"com.hk", "org.hk", "edu.hk",
	"com.sg", "edu.sg",
	"co.nz", "org.nz", "ac.nz",
	"com.mx", "org.mx",
	"co.za", "org.za",
	"com.tr", "org.tr",
	"com.ru", "org.ru",
	// Wildcard and exception rules (full PSL algorithm coverage).
	"*.ck", "!www.ck",
	"*.bn", "*.kw",
	// Infrastructure.
	"arpa", "in-addr.arpa", "ip6.arpa",
}

// Default is the table compiled from the embedded snapshot.
var Default = NewTable(defaultRules)

// PublicSuffix returns the public suffix of name under the table, e.g.
// "co.uk" for "www.bbc.co.uk". Per the PSL algorithm, if no rule matches,
// the suffix is the last label (the "prevailing rule is '*'").
func (t *Table) PublicSuffix(name string) string {
	labels := split(name)
	if len(labels) == 0 {
		return ""
	}
	// Walk suffixes from longest to shortest, tracking the longest match.
	// Exception rules beat all others; their suffix is the rule minus its
	// leftmost label.
	best := labels[len(labels)-1] // implicit "*" rule
	bestLen := 1
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		n := len(labels) - i
		if t.exceptions[cand] {
			exc := strings.Join(labels[i+1:], ".")
			return exc
		}
		if t.normal[cand] && n > bestLen {
			best, bestLen = cand, n
		}
		// Wildcard rule "*.X" matches "<anything>.X".
		if i+1 < len(labels) {
			parent := strings.Join(labels[i+1:], ".")
			if t.wildcard[parent] && n > bestLen {
				best, bestLen = cand, n
			}
		}
	}
	return best
}

// E2LD returns the effective second-level domain of name: the public
// suffix plus one additional label. It returns ErrNoEligibleDomain when
// the name is itself a public suffix (e.g. "co.uk") or empty.
func (t *Table) E2LD(name string) (string, error) {
	labels := split(name)
	if len(labels) == 0 {
		return "", ErrNoEligibleDomain
	}
	full := strings.Join(labels, ".")
	ps := t.PublicSuffix(full)
	if ps == full {
		return "", ErrNoEligibleDomain
	}
	psLabels := len(split(ps))
	start := len(labels) - psLabels - 1
	if start < 0 {
		return "", ErrNoEligibleDomain
	}
	return strings.Join(labels[start:], "."), nil
}

// E2LD extracts the e2LD of name using the Default table.
func E2LD(name string) (string, error) { return Default.E2LD(name) }

// PublicSuffix returns the public suffix of name using the Default table.
func PublicSuffix(name string) string { return Default.PublicSuffix(name) }

// split normalizes a domain name into lower-case labels, trimming a root
// dot and rejecting empty labels. Labels containing whitespace are
// rejected outright: they never occur in real DNS names, and a label
// with leading or trailing spaces would make the e2LD unstable under
// re-parsing (the outer TrimSpace would eat it on the next pass).
func split(name string) []string {
	name = strings.ToLower(strings.TrimSuffix(strings.TrimSpace(name), "."))
	if name == "" {
		return nil
	}
	labels := strings.Split(name, ".")
	for _, l := range labels {
		if l == "" || strings.IndexFunc(l, unicode.IsSpace) >= 0 {
			return nil
		}
	}
	return labels
}

// LoadTable parses public-suffix rules from r in the standard PSL file
// format: one rule per line, "//" comments, blank lines ignored, and the
// ICANN/private section markers treated as comments. It lets deployments
// swap the embedded snapshot for the full publicsuffix.org list without
// code changes.
func LoadTable(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	var rules []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		// PSL files may carry trailing whitespace-separated comments.
		if i := strings.IndexAny(line, " \t"); i > 0 {
			line = line[:i]
		}
		if !validRule(line) {
			return nil, fmt.Errorf("etld: line %d: invalid rule %q", lineNo, line)
		}
		rules = append(rules, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("etld: reading rules: %w", err)
	}
	return NewTable(rules), nil
}

// validRule performs light syntactic validation of one PSL rule.
func validRule(rule string) bool {
	rule = strings.TrimPrefix(rule, "!")
	if rule == "" || strings.HasPrefix(rule, ".") || strings.HasSuffix(rule, ".") {
		return false
	}
	for _, label := range strings.Split(rule, ".") {
		if label == "" {
			return false
		}
		if label == "*" {
			continue
		}
		for _, c := range label {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
				c >= '0' && c <= '9', c == '-', c == '_',
				c >= 0x80: // IDN labels pass through untouched
			default:
				return false
			}
		}
	}
	return true
}

package etld

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestE2LD(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		// Paper's own examples (§4.1).
		{"maps.google.com", "google.com"},
		{"www.bbc.uk.co", "bbc.uk.co"},
		{"google.com", "google.com"},
		{"a.b.c.d.example.org", "example.org"},
		{"www.example.co.uk", "example.co.uk"},
		{"example.co.uk", "example.co.uk"},
		// Trailing root dot and mixed case.
		{"WWW.Example.COM.", "example.com"},
		// Paper cluster TLDs.
		{"oorfapjflmp.ws", "oorfapjflmp.ws"},
		{"cdn.brvegnholster.bid", "brvegnholster.bid"},
		// Wildcard rule *.ck: public suffix is <label>.ck.
		{"www.foo.ck", "www.foo.ck"},
		{"a.b.foo.ck", "b.foo.ck"},
		// Exception rule !www.ck: suffix is ck, e2LD is www.ck.
		{"www.ck", "www.ck"},
		{"sub.www.ck", "www.ck"},
		// Unknown TLD falls back to last label as suffix.
		{"host.weirdtld", "host.weirdtld"},
		{"a.b.weirdtld", "b.weirdtld"},
	}
	for _, tt := range tests {
		got, err := E2LD(tt.in)
		if err != nil {
			t.Errorf("E2LD(%q) error: %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("E2LD(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestE2LDNoEligible(t *testing.T) {
	for _, in := range []string{"", "com", "co.uk", "ck", "foo.ck", ".", "..", "a..b"} {
		if _, err := E2LD(in); !errors.Is(err, ErrNoEligibleDomain) {
			t.Errorf("E2LD(%q) error = %v, want ErrNoEligibleDomain", in, err)
		}
	}
}

func TestPublicSuffix(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"www.google.com", "com"},
		{"www.bbc.co.uk", "co.uk"},
		{"bbc.uk.co", "uk.co"},
		{"x.y.z.ck", "z.ck"}, // wildcard *.ck matches exactly one label
		{"www.ck", "ck"},     // exception
		{"plain", "plain"},
		{"foo.unknowntld", "unknowntld"},
	}
	for _, tt := range tests {
		if got := PublicSuffix(tt.in); got != tt.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNewTableIgnoresCommentsAndBlanks(t *testing.T) {
	tbl := NewTable([]string{"// comment", "", "  com  ", "!www.ck", "*.ck"})
	if got := tbl.PublicSuffix("a.com"); got != "com" {
		t.Errorf("PublicSuffix(a.com) = %q", got)
	}
	if got, err := tbl.E2LD("sub.www.ck"); err != nil || got != "www.ck" {
		t.Errorf("E2LD(sub.www.ck) = %q, %v", got, err)
	}
}

// Property: the e2LD is always a suffix of the normalized input and has
// exactly one more label than its public suffix.
func TestE2LDProperties(t *testing.T) {
	labels := []string{"www", "mail", "a", "b3", "x-y", "cdn", "static"}
	tlds := []string{"com", "co.uk", "ws", "bid", "weird", "ck"}
	f := func(pick uint8, tldPick uint8, depth uint8) bool {
		n := int(depth%4) + 1
		parts := make([]string, 0, n+2)
		for i := 0; i < n; i++ {
			parts = append(parts, labels[(int(pick)+i)%len(labels)])
		}
		parts = append(parts, "owner")
		name := strings.Join(parts, ".") + "." + tlds[int(tldPick)%len(tlds)]
		got, err := E2LD(name)
		if err != nil {
			return false
		}
		if !strings.HasSuffix(strings.ToLower(name), got) {
			return false
		}
		ps := PublicSuffix(name)
		return len(strings.Split(got, ".")) == len(strings.Split(ps, "."))+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: E2LD is idempotent — extracting the e2LD of an e2LD returns it.
func TestE2LDIdempotent(t *testing.T) {
	names := []string{
		"maps.google.com", "a.b.example.co.uk", "x.oorfapjflmp.ws",
		"deep.cdn.brvegnholster.bid", "sub.www.ck", "a.b.foo.ck",
	}
	for _, name := range names {
		first, err := E2LD(name)
		if err != nil {
			t.Fatalf("E2LD(%q): %v", name, err)
		}
		second, err := E2LD(first)
		if err != nil {
			t.Fatalf("E2LD(%q): %v", first, err)
		}
		if first != second {
			t.Errorf("E2LD not idempotent: %q -> %q -> %q", name, first, second)
		}
	}
}

func BenchmarkE2LD(b *testing.B) {
	names := []string{
		"maps.google.com", "www.bbc.co.uk", "a.b.c.d.example.org",
		"oorfapjflmp.ws", "cdn.static.brvegnholster.bid",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := E2LD(names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLoadTable(t *testing.T) {
	psl := `// ===BEGIN ICANN DOMAINS===
com
// United Kingdom
co.uk
*.ck
!www.ck

// ===END ICANN DOMAINS===
uk.co
`
	tbl, err := LoadTable(strings.NewReader(psl))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ in, want string }{
		{"maps.google.com", "google.com"},
		{"www.bbc.co.uk", "bbc.co.uk"},
		{"www.bbc.uk.co", "bbc.uk.co"},
		{"sub.www.ck", "www.ck"},
	}
	for _, c := range cases {
		got, err := tbl.E2LD(c.in)
		if err != nil || got != c.want {
			t.Errorf("E2LD(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

func TestLoadTableRejectsGarbage(t *testing.T) {
	for _, bad := range []string{".leading.dot", "trailing.dot.", "em..pty", "bad^char"} {
		if _, err := LoadTable(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("rule %q accepted", bad)
		}
	}
	// But IDN labels and underscores pass.
	if _, err := LoadTable(strings.NewReader("xn--p1ai\n_dmarc.example\n")); err != nil {
		t.Errorf("valid rules rejected: %v", err)
	}
}

package etld

import (
	"strings"
	"testing"
)

// FuzzParseETLD drives the public-suffix algorithm with arbitrary
// names. Invariants: PublicSuffix and E2LD never panic; a successful
// e2LD always ends with the name's public suffix plus exactly one
// label; and E2LD is idempotent (the e2LD of an e2LD is itself).
func FuzzParseETLD(f *testing.F) {
	// Seed corpus mirrors the unit-test tables: plain gTLDs,
	// multi-label suffixes, wildcard and exception rules, normalization
	// edge cases, and junk.
	for _, s := range []string{
		"maps.google.com",
		"www.bbc.co.uk",
		"bbc.uk.co",
		"x.www.ck",
		"foo.bar.ck",
		"a.b.bid",
		"evil.download",
		"WWW.Example.COM.",
		"single",
		"co.uk",
		"1.2.3.4.in-addr.arpa",
		"",
		".",
		"..",
		"a..b",
		" spaces.com ",
		"xn--bcher-kva.de",
		strings.Repeat("a.", 200) + "com",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, name string) {
		ps := PublicSuffix(name)
		e2ld, err := E2LD(name)
		if err != nil {
			return
		}
		if ps == "" {
			t.Fatalf("E2LD(%q) = %q but PublicSuffix is empty", name, e2ld)
		}
		if e2ld != ps && !strings.HasSuffix(e2ld, "."+ps) {
			t.Fatalf("E2LD(%q) = %q does not end with public suffix %q", name, e2ld, ps)
		}
		if got := len(split(e2ld)) - len(split(ps)); got != 1 {
			t.Fatalf("E2LD(%q) = %q has %d labels beyond suffix %q, want 1", name, e2ld, got, ps)
		}
		again, err := E2LD(e2ld)
		if err != nil {
			t.Fatalf("E2LD not idempotent: E2LD(%q) = %q, then error %v", name, e2ld, err)
		}
		if again != e2ld {
			t.Fatalf("E2LD not idempotent: E2LD(%q) = %q, E2LD(%q) = %q", name, e2ld, e2ld, again)
		}
	})
}

package etld_test

import (
	"fmt"

	"repro/internal/etld"
)

func ExampleE2LD() {
	for _, name := range []string{"maps.google.com", "www.bbc.co.uk", "oorfapjflmp.ws"} {
		e2ld, err := etld.E2LD(name)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("%s -> %s\n", name, e2ld)
	}
	// Output:
	// maps.google.com -> google.com
	// www.bbc.co.uk -> bbc.co.uk
	// oorfapjflmp.ws -> oorfapjflmp.ws
}

func ExampleTable_PublicSuffix() {
	fmt.Println(etld.PublicSuffix("www.example.co.uk"))
	fmt.Println(etld.PublicSuffix("a.b.foo.ck")) // wildcard rule *.ck
	// Output:
	// co.uk
	// foo.ck
}

package stream

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// foldinStart anchors the hand-crafted fold-in traffic.
var foldinStart = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// foldinInputs is the tiny serve fixture plus one domain queried by a
// single host: rare.example shares dom0's host, resolved IP, and
// minutes, but the single-host pruning rule keeps it out of the model
// — exactly the shape the fold-in feeder exists for.
func foldinInputs() []pipeline.Input {
	var in []pipeline.Input
	for i := 0; i < 8; i++ {
		for h := 0; h < 3; h++ {
			for m := 0; m < 3; m++ {
				in = append(in, pipeline.Input{
					Time:     foldinStart.Add(time.Duration(2*i+m) * time.Minute),
					ClientIP: fmt.Sprintf("10.0.0.%d", (i+h)%10),
					QName:    fmt.Sprintf("www.dom%d.com", i),
					Answers:  []string{fmt.Sprintf("198.51.100.%d", (i+m)%8)},
				})
			}
		}
	}
	for m := 0; m < 2; m++ {
		in = append(in, pipeline.Input{
			Time:     foldinStart.Add(time.Duration(m) * time.Minute),
			ClientIP: "10.0.0.0",
			QName:    "www.rare.example",
			Answers:  []string{"198.51.100.0"},
		})
	}
	return in
}

// foldinDetectorConfig is shared between the rolling fixture and the
// reference batch build so both retain the same domain set.
func foldinDetectorConfig() core.Config {
	return core.Config{Seed: 42, EmbedDim: 4, EmbedSamples: 20_000, Workers: 1}
}

// runFoldinDay drives one rolling day over foldinInputs with cache
// attached and returns the cache's state after the boundary.
func runFoldinDay(t *testing.T, cache *core.FoldInCache) {
	t.Helper()
	r, err := New(Config{
		Start:      foldinStart,
		WindowDays: 1,
		Detector:   foldinDetectorConfig(),
		FoldIn:     cache,
		Labeler: func(candidates []string) ([]string, []int) {
			labels := make([]int, len(candidates))
			for i := range candidates {
				labels[i] = i % 2
			}
			return candidates, labels
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range foldinInputs() {
		r.Consume(in)
	}
	if _, err := r.EndOfDay(0); err != nil {
		t.Fatal(err)
	}
}

// foldinScorer builds the equivalent persisted model over the same
// window through the batch path, so the cached relations can be scored
// against a real Scorer.
func foldinScorer(t *testing.T) *core.Scorer {
	t.Helper()
	cfg := foldinDetectorConfig()
	cfg.Start = foldinStart
	cfg.Days = 1
	det := core.NewDetector(cfg)
	for _, in := range foldinInputs() {
		det.Consume(in)
	}
	if err := det.BuildModel(); err != nil {
		t.Fatal(err)
	}
	domains, err := det.Domains()
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, len(domains))
	for i := range domains {
		labels[i] = i % 2
	}
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	sc, err := core.LoadScorer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestStreamFeedsFoldIn checks the end-to-end seam: a domain pruned
// out of the rolling model lands in the shared fold-in cache at the
// day boundary, and a Scorer over the same window turns that evidence
// into a foldin/knn verdict — the relations reference retained
// neighbors, not ghosts.
func TestStreamFeedsFoldIn(t *testing.T) {
	cache := core.NewFoldInCache(core.FoldInConfig{})
	runFoldinDay(t, cache)
	if cache.Len() == 0 {
		t.Fatal("day boundary fed no fold-in evidence")
	}

	sc := foldinScorer(t)
	if _, ok := sc.Score("rare.example"); ok {
		t.Fatal("fixture broken: rare.example was retained")
	}
	now := foldinStart.Add(24 * time.Hour)
	res, ok := cache.Score(sc, "rare.example", now)
	if !ok {
		t.Fatal("no verdict for the pruned domain from stream-fed evidence")
	}
	if res.Known {
		t.Fatal("fold-in verdict claims known=true")
	}
	if res.Source != core.SourceFoldin && res.Source != core.SourceKNN {
		t.Fatalf("source %q, want foldin or knn", res.Source)
	}
	if res.Confidence <= 0 || res.Confidence > 1 {
		t.Fatalf("confidence %v outside (0,1]", res.Confidence)
	}
}

// TestStreamFoldInDeterministic replays the same capture through two
// independent rolling detectors and requires bit-identical verdicts
// from their caches: the fed relations are a pure function of the
// window's aggregates (sorted iteration, virtual time).
func TestStreamFoldInDeterministic(t *testing.T) {
	a := core.NewFoldInCache(core.FoldInConfig{})
	b := core.NewFoldInCache(core.FoldInConfig{})
	runFoldinDay(t, a)
	runFoldinDay(t, b)
	if a.Len() != b.Len() {
		t.Fatalf("cache sizes differ: %d vs %d", a.Len(), b.Len())
	}

	sc := foldinScorer(t)
	now := foldinStart.Add(24 * time.Hour)
	ra, oka := a.Score(sc, "rare.example", now)
	rb, okb := b.Score(sc, "rare.example", now)
	if !oka || !okb {
		t.Fatalf("verdicts missing: %v %v", oka, okb)
	}
	if ra != rb {
		t.Fatalf("replay diverged: %+v vs %+v", ra, rb)
	}
}

package stream

import (
	"testing"

	"repro/internal/dnssim"
	"repro/internal/pipeline"
)

// The remodel benchmarks measure the value of warm-starting LINE from
// the previous window: cold resets the carried embeddings before every
// rebuild, warm restores the state a real deployment would have after
// the preceding day's remodel. Both model the same final window, so the
// difference is purely the embedding sample budget and convergence.

func benchConsumed(b *testing.B) (*Rolling, int) {
	b.Helper()
	r, s, _ := rollingFixture(b)
	s.Generate(func(ev dnssim.Event) { r.Consume(pipeline.Input(ev)) })
	return r, s.Config.Days - 1
}

func BenchmarkRemodelCold(b *testing.B) {
	r, day := benchConsumed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.prevIndex, r.prevEmb = nil, nil
		if _, _, err := r.remodel(day); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemodelWarm(b *testing.B) {
	r, day := benchConsumed(b)
	// Populate the warm-start state the way a deployment would: from the
	// remodel of the preceding day's window.
	if _, _, err := r.remodel(day - 1); err != nil {
		b.Fatal(err)
	}
	warmIdx, warmEmb := r.prevIndex, r.prevEmb
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.prevIndex, r.prevEmb = warmIdx, warmEmb
		if _, _, err := r.remodel(day); err != nil {
			b.Fatal(err)
		}
	}
}

package stream

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/pipeline"
	"repro/internal/race"
	"repro/internal/threatintel"
)

func rollingFixture(t testing.TB) (*Rolling, *dnssim.Scenario, *threatintel.Service) {
	t.Helper()
	cfg := dnssim.SmallScenario(555)
	cfg.Hosts = 100
	cfg.BenignDomains = 300
	s := dnssim.NewScenario(cfg)
	ti := threatintel.NewService(s.TruthTable(), threatintel.Config{Seed: 555})

	// Threat intel lags reality: the labeler only knows about half of the
	// malicious population, so the rest are genuine discoveries for the
	// alert feed.
	known := make(map[string]bool)
	i := 0
	for _, d := range s.MaliciousDomains() {
		if i%2 == 0 {
			known[d] = true
		}
		i++
	}
	r, err := New(Config{
		Start:      s.Config.Start,
		WindowDays: 2,
		Detector:   core.Config{Seed: 555, EmbedDim: 16},
		Labeler: func(candidates []string) ([]string, []int) {
			domains, labels := ti.LabeledSet(candidates)
			var outD []string
			var outL []int
			for j, d := range domains {
				if labels[j] == 1 && !known[d] {
					continue // intel hasn't caught up with this domain yet
				}
				outD = append(outD, d)
				outL = append(outL, labels[j])
			}
			return outD, outL
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, s, ti
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing labeler accepted")
	}
}

// skipIfRace skips the tests that retrain a model per window day: LINE
// SGD's atomic operations make them exceed the default per-package test
// timeout under race instrumentation. The concurrent components have
// their own fast -race package tests.
func skipIfRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("window retraining too slow under the race detector; components are race-tested per package")
	}
}

func TestRollingEmitsMostlyMaliciousAlerts(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming end-to-end test")
	}
	skipIfRace(t)
	r, s, _ := rollingFixture(t)
	s.Generate(func(ev dnssim.Event) { r.Consume(pipeline.Input(ev)) })

	seen := make(map[string]bool)
	totalAlerts, truePos := 0, 0
	for day := 0; day < s.Config.Days; day++ {
		alerts, err := r.EndOfDay(day)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		for _, a := range alerts {
			if a.Day != day {
				t.Fatalf("alert day %d emitted at day %d", a.Day, day)
			}
			if seen[a.Domain] {
				t.Fatalf("domain %s alerted twice", a.Domain)
			}
			seen[a.Domain] = true
			totalAlerts++
			if l, ok := s.Truth(a.Domain); ok && l.Malicious {
				truePos++
			}
		}
	}
	if totalAlerts == 0 {
		t.Fatal("no alerts over the whole capture")
	}
	precision := float64(truePos) / float64(totalAlerts)
	t.Logf("alerts=%d precision=%.2f", totalAlerts, precision)
	if precision < 0.5 {
		t.Errorf("alert precision %.2f below 0.5", precision)
	}
}

func TestWindowEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming end-to-end test")
	}
	skipIfRace(t)
	r, s, _ := rollingFixture(t)
	s.Generate(func(ev dnssim.Event) { r.Consume(pipeline.Input(ev)) })
	before := r.BufferedDays()
	if _, err := r.EndOfDay(s.Config.Days - 1); err != nil {
		t.Fatal(err)
	}
	after := r.BufferedDays()
	if after >= before {
		t.Errorf("no eviction: %d buckets before, %d after", before, after)
	}
	if after > 2 {
		t.Errorf("window keeps %d day buckets, window is 2", after)
	}
}

func TestEmptyWindowErrors(t *testing.T) {
	r, _, _ := rollingFixture(t)
	if _, err := r.EndOfDay(0); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestConsumeClampsNegativeDays(t *testing.T) {
	r, s, _ := rollingFixture(t)
	r.Consume(pipeline.Input{
		Time:     s.Config.Start.Add(-48 * time.Hour),
		ClientIP: "10.0.0.1",
		QName:    "www.early.com",
	})
	if r.BufferedDays() != 1 {
		t.Fatalf("pre-window observation not clamped into day 0")
	}
	// The clamp must land the observation in day 0's aggregates, not a
	// negative bucket.
	if p := r.days[0]; p == nil || p.TotalQueries() != 1 {
		t.Fatalf("day-0 processor missing the clamped observation: %+v", r.days)
	}
}

// TestWarmStartStateCarries checks the remodel-to-remodel handoff: after
// a successful EndOfDay the previous window's embeddings are retained
// for seeding the next one, and subsequent remodels still succeed.
func TestWarmStartStateCarries(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming end-to-end test")
	}
	skipIfRace(t)
	r, s, _ := rollingFixture(t)
	s.Generate(func(ev dnssim.Event) { r.Consume(pipeline.Input(ev)) })

	if r.prevEmb != nil {
		t.Fatal("warm-start state set before any remodel")
	}
	if _, err := r.EndOfDay(1); err != nil {
		t.Fatal(err)
	}
	if len(r.prevEmb) != 3 || len(r.prevIndex) == 0 {
		t.Fatalf("warm-start state not recorded: %d embeddings, %d domains",
			len(r.prevEmb), len(r.prevIndex))
	}
	dim := r.cfg.Detector.EmbedDim
	for v, emb := range r.prevEmb {
		if emb.Dim != dim {
			t.Errorf("%v warm-start embedding dim %d, want %d", v, emb.Dim, dim)
		}
	}
	// The init hook must produce one row per requested domain, seeded for
	// exactly the persisting ones.
	var domains []string
	for d := range r.prevIndex {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	domains = append(domains, "brand-new.example")
	for v := range r.prevEmb {
		init := r.embedInit(v, domains)
		if len(init) != len(domains) {
			t.Fatalf("init rows %d, want %d", len(init), len(domains))
		}
		if init[len(init)-1] != nil {
			t.Error("new domain got a warm-start row")
		}
		if init[0] == nil {
			t.Error("persisting domain missing its warm-start row")
		}
	}
	// The second remodel consumes the warm state and records fresh state.
	if _, err := r.EndOfDay(2); err != nil {
		t.Fatal(err)
	}
	if len(r.prevEmb) != 3 {
		t.Fatal("warm-start state lost after second remodel")
	}
}

// shardedFixture builds a Rolling over a deterministic model config
// (fixed seed, single worker) so two instances fed the same traffic
// must produce byte-identical alert feeds and checkpoints regardless
// of shard count.
func shardedFixture(t testing.TB, shards int) (*Rolling, *dnssim.Scenario) {
	t.Helper()
	cfg := dnssim.SmallScenario(777)
	cfg.Hosts = 80
	cfg.BenignDomains = 200
	s := dnssim.NewScenario(cfg)
	ti := threatintel.NewService(s.TruthTable(), threatintel.Config{Seed: 777})
	r, err := New(Config{
		Start:      s.Config.Start,
		WindowDays: 2,
		Shards:     shards,
		Detector: core.Config{
			Seed:         777,
			EmbedDim:     8,
			EmbedSamples: 20_000,
			Workers:      1,
			DHCP:         s.DHCP(),
		},
		Labeler: ti.LabeledSet,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

// TestShardedStreamMatchesSerial is the integration half of the shard
// determinism guarantee: the same capture driven through a serial
// Rolling and a sharded one must yield the same alert feed, the same
// checkpoint bytes, and no degradation report.
func TestShardedStreamMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming end-to-end test")
	}
	skipIfRace(t)
	run := func(shards int) ([][]Alert, []byte) {
		r, s := shardedFixture(t, shards)
		defer r.Close()
		s.Generate(func(ev dnssim.Event) { r.Consume(pipeline.Input(ev)) })
		var feed [][]Alert
		for day := 0; day < s.Config.Days; day++ {
			alerts, err := r.EndOfDay(day)
			if err != nil {
				t.Fatalf("shards=%d day %d: %v", shards, day, err)
			}
			if deg := r.ShardDegraded(); deg != nil {
				t.Fatalf("shards=%d day %d: unexpected degradation: %v", shards, day, deg)
			}
			feed = append(feed, alerts)
		}
		var buf bytes.Buffer
		if err := r.Checkpoint(&buf, Cursor{Day: s.Config.Days - 1}); err != nil {
			t.Fatalf("shards=%d checkpoint: %v", shards, err)
		}
		return feed, buf.Bytes()
	}

	serialFeed, serialCkpt := run(1)
	shardedFeed, shardedCkpt := run(3)
	if !reflect.DeepEqual(serialFeed, shardedFeed) {
		t.Errorf("alert feeds differ:\nserial:  %+v\nsharded: %+v", serialFeed, shardedFeed)
	}
	if !bytes.Equal(serialCkpt, shardedCkpt) {
		t.Error("checkpoint bytes differ between serial and sharded runs")
	}
	var total int
	for _, alerts := range serialFeed {
		total += len(alerts)
	}
	if total == 0 {
		t.Fatal("no alerts over the whole capture; equivalence is vacuous")
	}
}

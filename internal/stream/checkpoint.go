package stream

// Crash-safe persistence for the streaming detector. A checkpoint,
// taken at a day boundary, captures everything a restart needs to
// continue the alert feed byte-identically: the window's per-day
// pipeline aggregates, the warm-start embedding state of the last
// successful remodel, the alerted-domain set, and a configuration
// fingerprint. The stream is one gob body framed by a magic header and
// a CRC-32 trailer (internal/crcio); WriteCheckpoint commits it
// atomically (temp file + fsync + rename) through the injectable
// filesystem seam of internal/faultio, so a crash — or an injected
// fault — at any step leaves the previous checkpoint intact.
//
// Days beyond the checkpoint cursor are deliberately not serialized:
// a boundary checkpoint captures completed days only, and the caller
// replays its input stream after Restore. The restored Rolling drops
// observations at or before the cursor itself, so the replay needs no
// caller-side filtering.

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/crcio"
	"repro/internal/faultio"
	"repro/internal/pipeline"
)

const (
	// checkpointMagic leads every checkpoint stream, so arbitrary gob
	// files (or truncated garbage) are refused before any decoding.
	checkpointMagic = "maldomain-ckpt\n"
	// checkpointVersion is bumped on any incompatible layout change.
	checkpointVersion = 1
)

// Typed failure classes for checkpoint loading. Restore never panics:
// arbitrary bytes produce an error wrapping one of these (or a plain
// I/O error from the reader itself).
var (
	// ErrCorruptCheckpoint reports a stream that is not a checkpoint,
	// fails its CRC, is truncated, or carries internally inconsistent
	// state.
	ErrCorruptCheckpoint = errors.New("stream: corrupt checkpoint")
	// ErrFingerprintMismatch reports a well-formed checkpoint written
	// under a different configuration; restoring it would silently
	// change model semantics mid-stream.
	ErrFingerprintMismatch = errors.New("stream: checkpoint fingerprint mismatch")
)

// Cursor locates a checkpoint in the caller's input and output streams:
// the last day boundary fully processed, and the caller's alert-feed
// length at that point. On resume, a driver truncates its feed to
// FeedBytes and replays input; the restored detector ignores days at or
// before Day.
type Cursor struct {
	// Day is the last day boundary whose EndOfDay completed before the
	// checkpoint was taken.
	Day int
	// FeedBytes is the caller's alert feed size in bytes at checkpoint
	// time (0 if the caller keeps no feed file).
	FeedBytes int64
}

// checkpointWire is the gob body of a checkpoint stream.
type checkpointWire struct {
	Version     int
	Fingerprint string
	Cursor      Cursor
	Flagged     []string
	Days        []daySnapshot
	// WarmDomains and WarmEmb carry the last successful remodel's
	// retained domain list (index-ordered) and per-view embeddings;
	// empty when no remodel has succeeded yet.
	WarmDomains []string
	WarmEmb     []viewVectors
}

type daySnapshot struct {
	Day  int
	Snap *pipeline.Snapshot
}

type viewVectors struct {
	View    bipartite.View
	Dim     int
	Vectors [][]float64
}

// fingerprint describes every configuration knob that shapes streaming
// state, so Restore can refuse checkpoints written under a different
// configuration. Call on a defaulted Config.
func (c Config) fingerprint() string {
	det := withWindow(c.Detector, c.Start, 0)
	return fmt.Sprintf("stream window=%d flag=%g minrank=%d det={%s}",
		c.WindowDays, c.FlagFraction, c.MinScoreRank, det.Fingerprint())
}

// Checkpoint writes the detector's state at the given cursor to w as
// one versioned, CRC-sealed stream. Only days at or before cur.Day are
// serialized (see the package comment on replay semantics).
func (r *Rolling) Checkpoint(w io.Writer, cur Cursor) error {
	if cur.Day < 0 {
		return fmt.Errorf("stream: checkpoint cursor day %d is negative", cur.Day)
	}
	if cur.FeedBytes < 0 {
		return fmt.Errorf("stream: checkpoint cursor feed offset %d is negative", cur.FeedBytes)
	}
	wire := checkpointWire{
		Version:     checkpointVersion,
		Fingerprint: r.cfg.fingerprint(),
		Cursor:      cur,
	}
	wire.Flagged = make([]string, 0, len(r.flagged))
	for d := range r.flagged {
		wire.Flagged = append(wire.Flagged, d)
	}
	sort.Strings(wire.Flagged)
	for d, p := range r.days {
		if d <= cur.Day {
			wire.Days = append(wire.Days, daySnapshot{Day: d, Snap: p.Snapshot()})
		}
	}
	sort.Slice(wire.Days, func(i, j int) bool { return wire.Days[i].Day < wire.Days[j].Day })
	if len(r.prevIndex) > 0 {
		// Validate in sorted domain order so a corrupt index yields the
		// same error (first offending domain) on every run, keeping the
		// checkpoint write path deterministic end to end.
		keys := make([]string, 0, len(r.prevIndex))
		for d := range r.prevIndex {
			keys = append(keys, d)
		}
		sort.Strings(keys)
		doms := make([]string, len(r.prevIndex))
		for _, d := range keys {
			i := r.prevIndex[d]
			if i < 0 || i >= len(doms) || doms[i] != "" {
				return fmt.Errorf("stream: warm-start index is not a permutation (domain %q at %d)", d, i)
			}
			doms[i] = d
		}
		wire.WarmDomains = doms
		for _, v := range bipartite.Views {
			emb := r.prevEmb[v]
			if emb == nil {
				return fmt.Errorf("stream: warm-start state missing %v embedding", v)
			}
			wire.WarmEmb = append(wire.WarmEmb, viewVectors{View: v, Dim: emb.Dim, Vectors: emb.Vectors})
		}
	}

	cw := crcio.NewWriter(w)
	if _, err := io.WriteString(cw, checkpointMagic); err != nil {
		return fmt.Errorf("stream: writing checkpoint header: %w", err)
	}
	if err := gob.NewEncoder(cw).Encode(wire); err != nil {
		return fmt.Errorf("stream: encoding checkpoint: %w", err)
	}
	if err := cw.WriteTrailer(); err != nil {
		return fmt.Errorf("stream: sealing checkpoint: %w", err)
	}
	return nil
}

// WriteCheckpoint atomically replaces path with a fresh checkpoint:
// the stream is written to a temp file in the same directory, fsynced,
// closed, and renamed over path. On any failure the temp file is
// removed and the previous checkpoint at path is untouched.
func (r *Rolling) WriteCheckpoint(path string, cur Cursor) error {
	return r.writeCheckpoint(faultio.OS, path, cur)
}

// writeCheckpoint is WriteCheckpoint with an injectable filesystem, the
// seam the fault-injection tests drive.
func (r *Rolling) writeCheckpoint(fs faultio.FS, path string, cur Cursor) error {
	start := time.Now() //maldlint:ignore detpath write latency metric only, never checkpoint contents
	n, err := r.checkpointTo(fs, path, cur)
	if m := r.cfg.Metrics; m != nil {
		result := "ok"
		if err != nil {
			result = "error"
		}
		m.CounterVec("maldomain_checkpoints_total",
			"Checkpoint write attempts by result.", "result").With(result).Inc()
		if err == nil {
			m.Gauge("maldomain_checkpoint_bytes",
				"Size in bytes of the last checkpoint written.").Set(float64(n))
			m.Gauge("maldomain_checkpoint_last_unix_seconds",
				//maldlint:ignore detpath wall-clock gauge is observability only, never checkpoint contents
				"Unix time of the last successful checkpoint write.").Set(float64(time.Now().Unix()))
			m.Histogram("maldomain_checkpoint_write_seconds",
				"Checkpoint write latency in seconds.").Observe(time.Since(start).Seconds())
		}
	}
	return err
}

// checkpointTo performs the atomic write sequence, returning the
// checkpoint size on success.
func (r *Rolling) checkpointTo(fs faultio.FS, path string, cur Cursor) (int64, error) {
	f, err := fs.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return 0, fmt.Errorf("stream: creating checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	// Best-effort cleanup on failure; the write error is the one worth
	// reporting.
	fail := func(step string, err error) (int64, error) {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return 0, fmt.Errorf("stream: %s checkpoint %s: %w", step, tmp, err)
	}
	cw := &countingWriter{w: bufio.NewWriterSize(f, 1<<20)}
	if err := r.Checkpoint(cw, cur); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return 0, err
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return fail("flushing", err)
	}
	if err := f.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return 0, fmt.Errorf("stream: closing checkpoint %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return 0, fmt.Errorf("stream: committing checkpoint %s: %w", path, err)
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Restore reads a checkpoint written by Checkpoint and returns a
// Rolling detector ready to continue from it, plus the cursor recorded
// at checkpoint time. cfg must be the same configuration the
// checkpointing detector ran under (compared by fingerprint; a
// mismatch is refused with ErrFingerprintMismatch). Corrupt, truncated,
// or foreign streams are refused with errors wrapping
// ErrCorruptCheckpoint — never a panic.
//
// After Restore, replay the input stream: observations for days at or
// before the cursor are ignored automatically, then call EndOfDay for
// each boundary after cursor.Day. With a deterministic model
// configuration (fixed seed, Workers=1) the resumed alert feed is
// byte-identical to an uninterrupted run.
func Restore(rd io.Reader, cfg Config) (*Rolling, Cursor, error) {
	r, cur, err := restore(rd, cfg)
	if m := cfg.Metrics; m != nil {
		result := "ok"
		switch {
		case errors.Is(err, ErrFingerprintMismatch):
			result = "fingerprint"
		case errors.Is(err, ErrCorruptCheckpoint):
			result = "corrupt"
		case err != nil:
			result = "error"
		}
		m.CounterVec("maldomain_restores_total",
			"Checkpoint restore attempts by result.", "result").With(result).Inc()
	}
	return r, cur, err
}

func restore(rd io.Reader, cfg Config) (*Rolling, Cursor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, Cursor{}, err
	}
	cr := crcio.NewReader(rd)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, Cursor{}, fmt.Errorf("%w: reading magic: %v", ErrCorruptCheckpoint, err)
	}
	if string(magic) != checkpointMagic {
		return nil, Cursor{}, fmt.Errorf("%w: not a checkpoint stream", ErrCorruptCheckpoint)
	}
	var wire checkpointWire
	if err := gob.NewDecoder(cr).Decode(&wire); err != nil {
		return nil, Cursor{}, fmt.Errorf("%w: decoding: %v", ErrCorruptCheckpoint, err)
	}
	if err := cr.VerifyTrailer(); err != nil {
		return nil, Cursor{}, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	if wire.Version != checkpointVersion {
		return nil, Cursor{}, fmt.Errorf("stream: checkpoint version %d, this build reads %d",
			wire.Version, checkpointVersion)
	}
	if got, want := wire.Fingerprint, cfg.fingerprint(); got != want {
		return nil, Cursor{}, fmt.Errorf("%w: checkpoint %q, config %q", ErrFingerprintMismatch, got, want)
	}
	if wire.Cursor.Day < 0 || wire.Cursor.FeedBytes < 0 {
		return nil, Cursor{}, fmt.Errorf("%w: negative cursor %+v", ErrCorruptCheckpoint, wire.Cursor)
	}

	r := &Rolling{
		cfg:     cfg,
		days:    make(map[int]*pipeline.Processor, len(wire.Days)),
		lastDay: wire.Cursor.Day,
		floor:   wire.Cursor.Day,
		flagged: make(map[string]bool, len(wire.Flagged)),
	}
	for _, d := range wire.Flagged {
		r.flagged[d] = true
	}
	rc := pipeline.RestoreConfig{DHCP: cfg.Detector.DHCP, Suffixes: cfg.Detector.Suffixes}
	for _, ds := range wire.Days {
		if ds.Day < 0 || ds.Day > wire.Cursor.Day {
			return nil, Cursor{}, fmt.Errorf("%w: day %d outside cursor %d", ErrCorruptCheckpoint, ds.Day, wire.Cursor.Day)
		}
		if _, dup := r.days[ds.Day]; dup {
			return nil, Cursor{}, fmt.Errorf("%w: duplicate day %d", ErrCorruptCheckpoint, ds.Day)
		}
		p, err := pipeline.FromSnapshot(ds.Snap, rc)
		if err != nil {
			return nil, Cursor{}, fmt.Errorf("%w: day %d: %v", ErrCorruptCheckpoint, ds.Day, err)
		}
		r.days[ds.Day] = p
	}
	if err := r.restoreWarmState(wire); err != nil {
		return nil, Cursor{}, err
	}
	// The shard pool is process-local scratch, not checkpoint state (the
	// fingerprint deliberately excludes Shards): a restored detector
	// re-attaches a fresh pool so replayed ingestion runs sharded too.
	if err := r.attachPool(); err != nil {
		return nil, Cursor{}, err
	}
	return r, wire.Cursor, nil
}

// restoreWarmState validates and installs the warm-start embeddings.
func (r *Rolling) restoreWarmState(wire checkpointWire) error {
	if len(wire.WarmDomains) == 0 {
		if len(wire.WarmEmb) != 0 {
			return fmt.Errorf("%w: warm embeddings without a domain index", ErrCorruptCheckpoint)
		}
		return nil
	}
	if len(wire.WarmEmb) != len(bipartite.Views) {
		return fmt.Errorf("%w: %d warm embeddings, want %d", ErrCorruptCheckpoint,
			len(wire.WarmEmb), len(bipartite.Views))
	}
	index := make(map[string]int, len(wire.WarmDomains))
	for i, d := range wire.WarmDomains {
		if d == "" {
			return fmt.Errorf("%w: empty warm-start domain at %d", ErrCorruptCheckpoint, i)
		}
		if _, dup := index[d]; dup {
			return fmt.Errorf("%w: duplicate warm-start domain %q", ErrCorruptCheckpoint, d)
		}
		index[d] = i
	}
	embs := make(map[bipartite.View]*core.Embedding, len(bipartite.Views))
	for i, vv := range wire.WarmEmb {
		if vv.View != bipartite.Views[i] {
			return fmt.Errorf("%w: warm embedding %d has view %d, want %d", ErrCorruptCheckpoint,
				i, int(vv.View), int(bipartite.Views[i]))
		}
		if vv.Dim <= 0 {
			return fmt.Errorf("%w: warm %v embedding has dimension %d", ErrCorruptCheckpoint, vv.View, vv.Dim)
		}
		if len(vv.Vectors) != len(wire.WarmDomains) {
			return fmt.Errorf("%w: warm %v embedding has %d vectors for %d domains", ErrCorruptCheckpoint,
				vv.View, len(vv.Vectors), len(wire.WarmDomains))
		}
		for j, vec := range vv.Vectors {
			if len(vec) != vv.Dim {
				return fmt.Errorf("%w: warm %v vector %d has dim %d, want %d", ErrCorruptCheckpoint,
					vv.View, j, len(vec), vv.Dim)
			}
		}
		embs[vv.View] = &core.Embedding{Dim: vv.Dim, Vectors: vv.Vectors}
	}
	r.prevIndex, r.prevEmb = index, embs
	return nil
}

// RestoreFile loads a checkpoint from path. A missing file is reported
// as-is (os.IsNotExist-compatible) so callers can treat it as a cold
// start.
func RestoreFile(path string, cfg Config) (*Rolling, Cursor, error) {
	f, err := os.Open(path)
	if err != nil {
		if m := cfg.Metrics; m != nil {
			m.CounterVec("maldomain_restores_total",
				"Checkpoint restore attempts by result.", "result").With("error").Inc()
		}
		return nil, Cursor{}, err
	}
	r, cur, rerr := Restore(bufio.NewReaderSize(f, 1<<20), cfg)
	if cerr := f.Close(); rerr == nil && cerr != nil {
		return nil, Cursor{}, cerr
	}
	return r, cur, rerr
}

// ConsumedThrough reports the last day boundary a restored checkpoint
// covers, or -1 for a detector that started cold. Observations at or
// before it are dropped by Consume.
func (r *Rolling) ConsumedThrough() int { return r.floor }

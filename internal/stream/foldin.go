// Fold-in evidence extraction for the rolling detector: at each day
// boundary, domains that were observed in the window but pruned out of
// the model (single-host domains, over-popular domains, late
// arrivals) are exactly the ones a serving daemon will be asked about
// and cannot answer from the decision table. feedFoldIn derives their
// relations to retained domains from the merged window aggregates and
// publishes them into a shared core.FoldInCache, so `maldetect stream`
// and `maldetect serve` score the unknown through one code path
// (core.Scorer.ScoreObserved).
//
// Determinism contract: the relations fed for a given window are a
// pure function of the aggregates. All map iterations either
// accumulate commutatively or are sorted before emitting, and time is
// virtual — the observation timestamp is the day boundary, not the
// wall clock — so replaying a capture reproduces the cache bit for
// bit.

package stream

import (
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// foldinNeighbors bounds how many retained neighbors per view are fed
// for one unknown domain: the strongest-overlap neighbors carry nearly
// all of the fold-in embedding's mass, and the cap keeps a window's
// evidence well under core's per-domain relation bound.
const foldinNeighbors = 8

// viewIndex is one behavioral view's inverted index: attribute key →
// retained-domain positions sharing it, plus each retained domain's
// attribute-set size for the Jaccard denominator.
type viewIndex struct {
	view  bipartite.View
	byKey map[string][]int32
	size  []int
}

// feedFoldIn publishes fold-in relations for every observed-but-not-
// retained domain of the window ending at day. The observation time is
// the day boundary itself, so TTL expiry in the shared cache follows
// stream time, not wall time.
func (r *Rolling) feedFoldIn(day int, retained []string, stats map[string]*pipeline.DomainStats) {
	cache := r.cfg.FoldIn
	if cache == nil {
		return
	}
	ridx := make(map[string]struct{}, len(retained))
	for _, d := range retained {
		ridx[d] = struct{}{}
	}
	var unknowns []string
	for d := range stats {
		if _, ok := ridx[d]; !ok {
			unknowns = append(unknowns, d)
		}
	}
	if len(unknowns) == 0 {
		return
	}
	sort.Strings(unknowns)

	indexes := buildViewIndexes(retained, stats)
	now := r.cfg.Start.Add(time.Duration(day+1) * 24 * time.Hour)
	var rels []core.Relation
	for _, u := range unknowns {
		rels = appendRelations(rels[:0], stats[u], retained, stats, indexes)
		if len(rels) > 0 {
			cache.Observe(u, rels, now)
		}
	}
}

// buildViewIndexes inverts the retained domains' attribute sets, one
// index per behavioral view. Iterating retained (a sorted slice)
// outermost makes every per-key posting list ascending by domain
// position, independent of the inner map iteration order.
func buildViewIndexes(retained []string, stats map[string]*pipeline.DomainStats) [3]*viewIndex {
	indexes := [3]*viewIndex{
		{view: bipartite.ViewQuery, byKey: make(map[string][]int32), size: make([]int, len(retained))},
		{view: bipartite.ViewIP, byKey: make(map[string][]int32), size: make([]int, len(retained))},
		{view: bipartite.ViewTime, byKey: make(map[string][]int32), size: make([]int, len(retained))},
	}
	var minuteKey [8]byte
	for i, dom := range retained {
		st := stats[dom]
		if st == nil {
			continue
		}
		indexes[0].size[i] = len(st.Hosts)
		for h := range st.Hosts {
			indexes[0].byKey[h] = append(indexes[0].byKey[h], int32(i))
		}
		indexes[1].size[i] = len(st.IPs)
		for ip := range st.IPs {
			indexes[1].byKey[ip] = append(indexes[1].byKey[ip], int32(i))
		}
		indexes[2].size[i] = len(st.Minutes)
		for m := range st.Minutes {
			indexes[2].byKey[string(minuteBytes(&minuteKey, m))] = append(
				indexes[2].byKey[string(minuteBytes(&minuteKey, m))], int32(i))
		}
	}
	return indexes
}

// minuteBytes renders a minute index as a fixed-width big-endian key.
func minuteBytes(buf *[8]byte, m int) []byte {
	v := uint64(m)
	for i := 7; i >= 0; i-- {
		buf[i] = byte(v)
		v >>= 8
	}
	return buf[:]
}

// appendRelations appends u's top-overlap relations per view, weighted
// by Jaccard similarity of the attribute sets — the same similarity
// the §4.1 projections use — and truncated to foldinNeighbors.
func appendRelations(dst []core.Relation, st *pipeline.DomainStats, retained []string, stats map[string]*pipeline.DomainStats, indexes [3]*viewIndex) []core.Relation {
	if st == nil {
		return dst
	}
	counts := make(map[int32]int)
	var minuteKey [8]byte
	for _, idx := range indexes {
		clear(counts)
		switch idx.view {
		case bipartite.ViewQuery:
			for h := range st.Hosts {
				for _, i := range idx.byKey[h] {
					counts[i]++
				}
			}
		case bipartite.ViewIP:
			for ip := range st.IPs {
				for _, i := range idx.byKey[ip] {
					counts[i]++
				}
			}
		case bipartite.ViewTime:
			for m := range st.Minutes {
				for _, i := range idx.byKey[string(minuteBytes(&minuteKey, m))] {
					counts[i]++
				}
			}
		}
		if len(counts) == 0 {
			continue
		}
		own := ownSize(st, idx.view)
		type cand struct {
			i int32
			w float64
		}
		cands := make([]cand, 0, len(counts))
		for i, overlap := range counts {
			union := own + idx.size[i] - overlap
			if union <= 0 {
				continue
			}
			cands = append(cands, cand{i, float64(overlap) / float64(union)})
		}
		// Strongest first; equal weights break by domain position so the
		// truncation below is deterministic regardless of map order.
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].w != cands[b].w {
				return cands[a].w > cands[b].w
			}
			return cands[a].i < cands[b].i
		})
		if len(cands) > foldinNeighbors {
			cands = cands[:foldinNeighbors]
		}
		for _, c := range cands {
			dst = append(dst, core.Relation{
				View:     idx.view,
				Neighbor: retained[c.i],
				Weight:   c.w,
			})
		}
	}
	return dst
}

// ownSize returns the unknown domain's attribute-set size in one view.
func ownSize(st *pipeline.DomainStats, view bipartite.View) int {
	switch view {
	case bipartite.ViewQuery:
		return len(st.Hosts)
	case bipartite.ViewIP:
		return len(st.IPs)
	case bipartite.ViewTime:
		return len(st.Minutes)
	}
	return 0
}

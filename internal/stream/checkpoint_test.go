package stream

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/crcio"
	"repro/internal/dnssim"
	"repro/internal/dnswire"
	"repro/internal/faultio"
	"repro/internal/obsv"
	"repro/internal/pipeline"
	"repro/internal/threatintel"
)

// tinyConfig is a checkpoint-test configuration cheap enough to restore
// hundreds of times. Calling it twice yields fingerprint-identical
// configs (the labeler is not part of the fingerprint).
func tinyConfig() Config {
	return Config{
		Start:      time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC),
		WindowDays: 2,
		Detector:   core.Config{Seed: 99, EmbedDim: 8},
		Labeler:    func([]string) ([]string, []int) { return nil, nil },
	}
}

// tinyInput is one synthetic observation on the given day.
func tinyInput(cfg Config, day int, host, qname, answer string) pipeline.Input {
	return pipeline.Input{
		Time:     cfg.Start.Add(time.Duration(day)*24*time.Hour + 5*time.Minute),
		ClientIP: host,
		QName:    qname,
		RCode:    dnswire.RCodeNoError,
		Answers:  []string{answer},
		TTL:      300,
	}
}

// tinyRolling builds a detector with two days of synthetic aggregates,
// a flagged domain, and hand-planted warm-start state — every field a
// checkpoint carries — without paying for a real model build.
func tinyRolling(t testing.TB) *Rolling {
	t.Helper()
	r, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.Consume(tinyInput(r.cfg, 0, "10.0.0.1", "www.alpha.com", "198.51.100.1"))
	r.Consume(tinyInput(r.cfg, 0, "10.0.0.2", "cdn.alpha.com", "198.51.100.2"))
	r.Consume(tinyInput(r.cfg, 1, "10.0.0.1", "evil.beta.net", "203.0.113.9"))
	r.flagged["evil.beta.net"] = true
	r.prevIndex = map[string]int{"alpha.com": 0, "beta.net": 1}
	r.prevEmb = make(map[bipartite.View]*core.Embedding)
	for vi, v := range bipartite.Views {
		r.prevEmb[v] = &core.Embedding{Dim: 4, Vectors: [][]float64{
			{0.1 * float64(vi+1), 0.2, 0.3, 0.4},
			{-0.5, 0.6 * float64(vi+1), -0.7, 0.8},
		}}
	}
	return r
}

// checkpointBytes serializes r at cur into memory.
func checkpointBytes(t testing.TB, r *Rolling, cur Cursor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Checkpoint(&buf, cur); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTrip(t *testing.T) {
	r := tinyRolling(t)
	// A day past the cursor must not be serialized: the caller replays
	// it from its input stream.
	r.Consume(tinyInput(r.cfg, 2, "10.0.0.3", "late.gamma.org", "198.51.100.9"))

	cur := Cursor{Day: 1, FeedBytes: 123}
	data := checkpointBytes(t, r, cur)

	q, got, err := Restore(bytes.NewReader(data), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got != cur {
		t.Fatalf("cursor round trip: got %+v, want %+v", got, cur)
	}
	if q.ConsumedThrough() != 1 {
		t.Fatalf("ConsumedThrough = %d, want 1", q.ConsumedThrough())
	}
	if q.BufferedDays() != 2 {
		t.Fatalf("restored %d day buckets, want 2 (day 2 is past the cursor)", q.BufferedDays())
	}
	for d := 0; d <= 1; d++ {
		if !reflect.DeepEqual(r.days[d].Snapshot(), q.days[d].Snapshot()) {
			t.Fatalf("day %d aggregates differ after restore", d)
		}
	}
	if !reflect.DeepEqual(r.flagged, q.flagged) {
		t.Fatalf("flagged set differs: %v vs %v", r.flagged, q.flagged)
	}
	if !reflect.DeepEqual(r.prevIndex, q.prevIndex) {
		t.Fatalf("warm-start index differs: %v vs %v", r.prevIndex, q.prevIndex)
	}
	if !reflect.DeepEqual(r.prevEmb, q.prevEmb) {
		t.Fatal("warm-start embeddings differ after restore")
	}

	// Replay semantics: days at or before the cursor are dropped, later
	// days land normally, and the covered boundary refuses to re-run.
	before := q.days[1].TotalQueries()
	q.Consume(tinyInput(q.cfg, 1, "10.0.0.7", "replayed.beta.net", "203.0.113.7"))
	if q.days[1].TotalQueries() != before {
		t.Fatal("restored detector re-counted a replayed observation")
	}
	q.Consume(tinyInput(q.cfg, 2, "10.0.0.3", "late.gamma.org", "198.51.100.9"))
	if q.BufferedDays() != 3 {
		t.Fatal("post-cursor replay did not land in a fresh day bucket")
	}
	if !reflect.DeepEqual(r.days[2].Snapshot(), q.days[2].Snapshot()) {
		t.Fatal("replayed post-cursor day differs from the original")
	}
	if _, err := q.EndOfDay(1); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("EndOfDay at the cursor day: err = %v, want checkpoint refusal", err)
	}
}

func TestCheckpointRejectsBadCursor(t *testing.T) {
	r := tinyRolling(t)
	var buf bytes.Buffer
	if err := r.Checkpoint(&buf, Cursor{Day: -1}); err == nil {
		t.Fatal("negative cursor day accepted")
	}
	if err := r.Checkpoint(&buf, Cursor{Day: 0, FeedBytes: -1}); err == nil {
		t.Fatal("negative feed offset accepted")
	}
}

func TestRestoreRejectsForeignAndCorrupt(t *testing.T) {
	valid := checkpointBytes(t, tinyRolling(t), Cursor{Day: 1})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not a checkpoint", []byte("definitely not a checkpoint stream")},
		{"magic only", []byte(checkpointMagic)},
		{"truncated mid-body", valid[:len(valid)/2]},
		{"truncated in trailer", valid[:len(valid)-2]},
		{"trailer flipped", func() []byte {
			d := bytes.Clone(valid)
			d[len(d)-1] ^= 0x01
			return d
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Restore(bytes.NewReader(tc.data), tinyConfig()); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
			}
		})
	}
}

// TestRestoreDetectsEveryByteFlip is the integrity contract: any
// single-bit corruption anywhere in the stream is refused as corrupt
// (the CRC covers the magic, the body, and the cursor alike).
func TestRestoreDetectsEveryByteFlip(t *testing.T) {
	valid := checkpointBytes(t, tinyRolling(t), Cursor{Day: 1})
	cfg := tinyConfig()
	for i := range valid {
		flipped := bytes.Clone(valid)
		flipped[i] ^= 0x10
		if _, _, err := Restore(bytes.NewReader(flipped), cfg); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorruptCheckpoint", i, err)
		}
	}
}

func TestRestoreRejectsFingerprintMismatch(t *testing.T) {
	valid := checkpointBytes(t, tinyRolling(t), Cursor{Day: 1})
	other := tinyConfig()
	other.WindowDays = 3
	if _, _, err := Restore(bytes.NewReader(valid), other); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("window change: err = %v, want ErrFingerprintMismatch", err)
	}
	other = tinyConfig()
	other.Detector.Seed = 100
	if _, _, err := Restore(bytes.NewReader(valid), other); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("seed change: err = %v, want ErrFingerprintMismatch", err)
	}
}

func TestRestoreRejectsUnknownVersion(t *testing.T) {
	// A well-formed, correctly checksummed stream from a future version
	// must be refused with a version message, not misread.
	var buf bytes.Buffer
	cw := crcio.NewWriter(&buf)
	if _, err := io.WriteString(cw, checkpointMagic); err != nil {
		t.Fatal(err)
	}
	wire := checkpointWire{Version: checkpointVersion + 1, Fingerprint: "future"}
	if err := gob.NewEncoder(cw).Encode(wire); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteTrailer(); err != nil {
		t.Fatal(err)
	}
	_, _, err := Restore(bytes.NewReader(buf.Bytes()), tinyConfig())
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err = %v, want version refusal", err)
	}
}

// TestRestoreRejectsInconsistentWire covers corruption the CRC cannot
// catch: streams that were sealed correctly but carry internally
// impossible state.
func TestRestoreRejectsInconsistentWire(t *testing.T) {
	r := tinyRolling(t)
	base := func() checkpointWire {
		wire := checkpointWire{
			Version:     checkpointVersion,
			Fingerprint: r.cfg.fingerprint(),
			Cursor:      Cursor{Day: 1},
		}
		wire.Days = append(wire.Days,
			daySnapshot{Day: 0, Snap: r.days[0].Snapshot()},
			daySnapshot{Day: 1, Snap: r.days[1].Snapshot()})
		wire.WarmDomains = []string{"alpha.com", "beta.net"}
		for _, v := range bipartite.Views {
			wire.WarmEmb = append(wire.WarmEmb,
				viewVectors{View: v, Dim: 4, Vectors: r.prevEmb[v].Vectors})
		}
		return wire
	}
	cases := []struct {
		name   string
		mutate func(*checkpointWire)
	}{
		{"negative cursor", func(w *checkpointWire) { w.Cursor.Day = -2 }},
		{"day past cursor", func(w *checkpointWire) { w.Days[1].Day = 5 }},
		{"duplicate day", func(w *checkpointWire) { w.Days[1].Day = w.Days[0].Day }},
		{"corrupt day snapshot", func(w *checkpointWire) { w.Days[0].Snap.Days = 0 }},
		{"warm emb without index", func(w *checkpointWire) { w.WarmDomains = nil }},
		{"missing view", func(w *checkpointWire) { w.WarmEmb = w.WarmEmb[:2] }},
		{"empty warm domain", func(w *checkpointWire) { w.WarmDomains[0] = "" }},
		{"duplicate warm domain", func(w *checkpointWire) { w.WarmDomains[1] = w.WarmDomains[0] }},
		{"zero emb dim", func(w *checkpointWire) { w.WarmEmb[0].Dim = 0 }},
		{"row count mismatch", func(w *checkpointWire) { w.WarmEmb[0].Vectors = w.WarmEmb[0].Vectors[:1] }},
		{"ragged vector", func(w *checkpointWire) { w.WarmEmb[0].Vectors[0] = []float64{1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := base()
			tc.mutate(&wire)
			var buf bytes.Buffer
			cw := crcio.NewWriter(&buf)
			if _, err := io.WriteString(cw, checkpointMagic); err != nil {
				t.Fatal(err)
			}
			if err := gob.NewEncoder(cw).Encode(wire); err != nil {
				t.Fatal(err)
			}
			if err := cw.WriteTrailer(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := Restore(bytes.NewReader(buf.Bytes()), tinyConfig()); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
			}
		})
	}
}

// TestWriteCheckpointFaults drives the atomic write sequence through
// every injected failure the faultio seam models. The invariant under
// test: a failed write at any step surfaces an error, leaves the
// previous checkpoint byte-identical and loadable, and litters no temp
// files.
func TestWriteCheckpointFaults(t *testing.T) {
	cases := []struct {
		name   string
		faults func() *faultio.Faults
		want   error // sentinel expected in the returned error chain
	}{
		{"create fails", func() *faultio.Faults { return &faultio.Faults{FailCreate: true} }, faultio.ErrInjected},
		{"write fails mid-stream", func() *faultio.Faults {
			return &faultio.Faults{WrapWriter: func(w io.Writer) io.Writer { return faultio.FailWriter(w, 64) }}
		}, faultio.ErrInjected},
		{"torn write", func() *faultio.Faults {
			return &faultio.Faults{WrapWriter: func(w io.Writer) io.Writer { return faultio.TornWriter(w, 64) }}
		}, faultio.ErrInjected},
		{"short write", func() *faultio.Faults {
			return &faultio.Faults{WrapWriter: func(w io.Writer) io.Writer { return faultio.ShortWriter(w, 64) }}
		}, io.ErrShortWrite},
		{"sync fails", func() *faultio.Faults { return &faultio.Faults{FailSync: true} }, faultio.ErrInjected},
		{"close fails", func() *faultio.Faults { return &faultio.Faults{FailClose: true} }, faultio.ErrInjected},
		{"rename fails", func() *faultio.Faults { return &faultio.Faults{FailRename: true} }, faultio.ErrInjected},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "stream.ckpt")
			r := tinyRolling(t)
			if err := r.WriteCheckpoint(path, Cursor{Day: 0, FeedBytes: 10}); err != nil {
				t.Fatal(err)
			}
			prev, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			faults := tc.faults()
			err = r.writeCheckpoint(faults, path, Cursor{Day: 1, FeedBytes: 20})
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v in the chain", err, tc.want)
			}
			if faults.Renames != 0 {
				t.Fatal("failed write reached the commit rename")
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(prev, after) {
				t.Fatal("previous checkpoint modified by a failed write")
			}
			if _, cur, err := RestoreFile(path, tinyConfig()); err != nil || cur.Day != 0 {
				t.Fatalf("previous checkpoint unloadable after failed write: cur=%+v err=%v", cur, err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 {
				t.Fatalf("temp litter after failed write: %d entries", len(entries))
			}
		})
	}
}

func TestWriteCheckpointAndRestoreFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.ckpt")
	m := obsv.NewRegistry()
	r := tinyRolling(t)
	r.cfg.Metrics = m

	if err := r.WriteCheckpoint(path, Cursor{Day: 1, FeedBytes: 77}); err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Metrics = m
	q, cur, err := RestoreFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cur != (Cursor{Day: 1, FeedBytes: 77}) || q.BufferedDays() != 2 {
		t.Fatalf("restore from file: cur=%+v days=%d", cur, q.BufferedDays())
	}

	if got := m.CounterVec("maldomain_checkpoints_total", "", "result").With("ok").Value(); got != 1 {
		t.Errorf("checkpoints_total{ok} = %d, want 1", got)
	}
	if got := m.Gauge("maldomain_checkpoint_bytes", "").Value(); got <= 0 {
		t.Errorf("checkpoint_bytes = %v, want > 0", got)
	}
	if got := m.Gauge("maldomain_checkpoint_last_unix_seconds", "").Value(); got <= 0 {
		t.Errorf("checkpoint_last_unix_seconds = %v, want > 0", got)
	}
	if got := m.CounterVec("maldomain_restores_total", "", "result").With("ok").Value(); got != 1 {
		t.Errorf("restores_total{ok} = %d, want 1", got)
	}

	// A missing checkpoint file is a cold start, not corruption.
	_, _, err = RestoreFile(filepath.Join(dir, "absent.ckpt"), cfg)
	if !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want os.IsNotExist", err)
	}
}

// TestDegradedDayStillEvicts is the retention-leak regression test: a
// failing day boundary must release expired aggregates exactly like a
// successful one, so a run of bad days cannot grow memory without
// bound.
func TestDegradedDayStillEvicts(t *testing.T) {
	cfg := tinyConfig()
	m := obsv.NewRegistry()
	cfg.Metrics = m
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		r.Consume(tinyInput(cfg, d, "10.0.0.1", fmt.Sprintf("www.day%d.com", d), "198.51.100.1"))
	}
	if r.BufferedDays() != 3 {
		t.Fatalf("fixture consumed %d days, want 3", r.BufferedDays())
	}

	// An empty window fails at the remodel stage; its eviction must
	// still run.
	_, err = r.EndOfDay(10)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DegradedError", err)
	}
	if de.Day != 10 || de.Stage != "remodel" {
		t.Fatalf("degraded day=%d stage=%q, want 10/remodel", de.Day, de.Stage)
	}
	if r.BufferedDays() != 0 {
		t.Fatalf("failed day leaked %d expired aggregates", r.BufferedDays())
	}

	// Repeated failures (here: windows too thin to train on, since the
	// labeler knows nothing) stay bounded and keep reporting typed
	// errors; the detector never wedges.
	failures := 1
	for d := 11; d < 30; d++ {
		r.Consume(tinyInput(cfg, d, "10.0.0.1", fmt.Sprintf("www.day%d.com", d), "198.51.100.1"))
		if _, err := r.EndOfDay(d); err != nil {
			if !errors.As(err, &de) {
				t.Fatalf("day %d: err = %v, want *DegradedError", d, err)
			}
			failures++
		}
		if r.BufferedDays() > cfg.WindowDays {
			t.Fatalf("day %d: %d buffered days exceed the window %d", d, r.BufferedDays(), cfg.WindowDays)
		}
	}
	if got := m.Counter("maldomain_degraded_days_total", "").Value(); got != uint64(failures) {
		t.Errorf("degraded_days_total = %d, want %d", got, failures)
	}
}

// deterministicConfig is the fixture for the crash-equivalence tests:
// Workers=1 pins the hogwild SGD to one goroutine so two runs from the
// same seed produce bit-identical models, which is what lets a resumed
// run reproduce the alert feed exactly.
func deterministicConfig(t testing.TB, fail *bool) (Config, *dnssim.Scenario) {
	t.Helper()
	scfg := dnssim.SmallScenario(777)
	scfg.Hosts = 60
	scfg.BenignDomains = 200
	s := dnssim.NewScenario(scfg)
	ti := threatintel.NewService(s.TruthTable(), threatintel.Config{Seed: 777})
	known := make(map[string]bool)
	for i, d := range s.MaliciousDomains() {
		if i%2 == 0 {
			known[d] = true
		}
	}
	cfg := Config{
		Start:      s.Config.Start,
		WindowDays: 2,
		Detector:   core.Config{Seed: 777, EmbedDim: 16, Workers: 1},
		Labeler: func(candidates []string) ([]string, []int) {
			if fail != nil && *fail {
				return nil, nil
			}
			domains, labels := ti.LabeledSet(candidates)
			var outD []string
			var outL []int
			for j, d := range domains {
				if labels[j] == 1 && !known[d] {
					continue
				}
				outD = append(outD, d)
				outL = append(outL, labels[j])
			}
			return outD, outL
		},
	}
	return cfg, s
}

// TestCrashEquivalence is the headline crash-safety property: a run
// interrupted after a day boundary and resumed from its checkpoint
// emits, for every remaining day, exactly the alerts of an
// uninterrupted run — same domains, same order, same scores.
func TestCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming end-to-end test")
	}
	skipIfRace(t)
	cfg, s := deterministicConfig(t, nil)

	// Reference: one uninterrupted run over the whole capture.
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Generate(func(ev dnssim.Event) { ref.Consume(pipeline.Input(ev)) })
	refAlerts := make(map[int][]Alert)
	for day := 0; day < s.Config.Days; day++ {
		alerts, err := ref.EndOfDay(day)
		if err != nil {
			t.Fatalf("reference day %d: %v", day, err)
		}
		refAlerts[day] = alerts
	}

	// Interrupted: run through day 1, checkpoint, "crash", restore,
	// replay the full trace, finish the remaining days.
	const crashAfter = 1
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Generate(func(ev dnssim.Event) { first.Consume(pipeline.Input(ev)) })
	for day := 0; day <= crashAfter; day++ {
		alerts, err := first.EndOfDay(day)
		if err != nil {
			t.Fatalf("first run day %d: %v", day, err)
		}
		if !reflect.DeepEqual(alerts, refAlerts[day]) {
			t.Fatalf("day %d diverged before the crash; model build is not deterministic", day)
		}
	}
	data := checkpointBytes(t, first, Cursor{Day: crashAfter})
	first = nil // the crash

	resumed, cur, err := Restore(bytes.NewReader(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Day != crashAfter {
		t.Fatalf("restored cursor day %d, want %d", cur.Day, crashAfter)
	}
	s.Generate(func(ev dnssim.Event) { resumed.Consume(pipeline.Input(ev)) })
	for day := crashAfter + 1; day < s.Config.Days; day++ {
		alerts, err := resumed.EndOfDay(day)
		if err != nil {
			t.Fatalf("resumed day %d: %v", day, err)
		}
		if !reflect.DeepEqual(alerts, refAlerts[day]) {
			t.Fatalf("day %d alerts diverge after restore:\n resumed: %+v\n reference: %+v",
				day, alerts, refAlerts[day])
		}
	}
}

// TestDegradedDayRecovers exercises graceful degradation on a real
// model: a boundary whose training fails reports a typed error, keeps
// the warm-start state, and the same boundary succeeds on retry once
// the labeler heals.
func TestDegradedDayRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming end-to-end test")
	}
	skipIfRace(t)
	fail := false
	cfg, s := deterministicConfig(t, &fail)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Generate(func(ev dnssim.Event) { r.Consume(pipeline.Input(ev)) })

	if _, err := r.EndOfDay(1); err != nil {
		t.Fatal(err)
	}
	fail = true
	_, err = r.EndOfDay(2)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DegradedError", err)
	}
	if de.Day != 2 || de.Stage != "train" {
		t.Fatalf("degraded day=%d stage=%q, want 2/train", de.Day, de.Stage)
	}
	if len(r.prevEmb) != len(bipartite.Views) || len(r.prevIndex) == 0 {
		t.Fatal("warm-start state lost on a degraded day")
	}

	// Intel heals; the same boundary still has its window buffered and
	// now succeeds.
	fail = false
	if _, err := r.EndOfDay(2); err != nil {
		t.Fatalf("retry after degradation: %v", err)
	}
}

// FuzzRestore feeds arbitrary bytes to Restore: whatever the input, it
// must return a typed error or a valid detector — never panic. The seed
// corpus covers the valid stream, truncations, and sparse bit flips.
func FuzzRestore(f *testing.F) {
	valid := checkpointBytes(f, tinyRolling(f), Cursor{Day: 1, FeedBytes: 7})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(checkpointMagic))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	for i := 0; i < len(valid); i += 41 {
		flipped := bytes.Clone(valid)
		flipped[i] ^= 1 << (i % 8)
		f.Add(flipped)
	}
	cfg := tinyConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		r, cur, err := Restore(bytes.NewReader(data), cfg)
		if err != nil {
			if r != nil {
				t.Fatal("non-nil detector returned with an error")
			}
			return
		}
		if r == nil || cur.Day < 0 || cur.FeedBytes < 0 {
			t.Fatalf("accepted stream yielded invalid state: r=%v cur=%+v", r, cur)
		}
		if r.BufferedDays() < 0 || r.ConsumedThrough() != cur.Day {
			t.Fatalf("restored detector inconsistent with cursor %+v", cur)
		}
	})
}

// TestRestoreSurvivesCrashBeforeRename simulates a process crash in
// the middle of the atomic checkpoint sequence, after the temp file was
// (partially or even fully) written but before the commit rename. A
// real crash runs no failure-path cleanup, so the directory is left
// with orphaned temp files: one torn mid-write, one complete but never
// committed. The invariant: the previous generation at the committed
// path restores byte-intact, orphaned temps are never trusted, and the
// next successful write still commits normally.
func TestRestoreSurvivesCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.ckpt")
	r := tinyRolling(t)
	if err := r.WriteCheckpoint(path, Cursor{Day: 0, FeedBytes: 10}); err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Generation 2 dies before rename: serialize it, then plant its temp
	// files directly, exactly as a crashed writer would leave them.
	var gen2 bytes.Buffer
	if err := r.Checkpoint(&gen2, Cursor{Day: 1, FeedBytes: 20}); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, ".ckpt-1111111")
	full := filepath.Join(dir, ".ckpt-2222222")
	if err := os.WriteFile(torn, gen2.Bytes()[:100], 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, gen2.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}

	// The committed path is untouched by the crash and restores to
	// generation 1.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prev, after) {
		t.Fatal("previous checkpoint generation modified by a crashed write")
	}
	restored, cur, err := RestoreFile(path, tinyConfig())
	if err != nil || cur.Day != 0 {
		t.Fatalf("previous generation unloadable after crash: cur=%+v err=%v", cur, err)
	}

	// A torn temp is not a checkpoint: restoring it must be refused with
	// ErrCorruptCheckpoint, never a panic or a silent partial load.
	if _, _, err := RestoreFile(torn, tinyConfig()); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("torn temp restore: err = %v, want ErrCorruptCheckpoint", err)
	}

	// Recovery: the restored detector's next write commits a fresh
	// generation over the old path despite the leftover temp litter.
	restored.Consume(tinyInput(restored.cfg, 1, "10.0.0.3", "www.gamma.org", "198.51.100.3"))
	if err := restored.WriteCheckpoint(path, Cursor{Day: 1, FeedBytes: 30}); err != nil {
		t.Fatal(err)
	}
	if _, cur, err := RestoreFile(path, tinyConfig()); err != nil || cur.Day != 1 {
		t.Fatalf("post-crash commit unloadable: cur=%+v err=%v", cur, err)
	}
}

// Package stream provides the rolling deployment mode the paper's
// introduction motivates: "detecting malicious domains in real-time".
//
// The batch pipeline models a whole capture at once; a deployed system
// instead observes traffic continuously and must surface newly active
// malicious domains every day. Rolling aggregates each day's traffic
// into its own pipeline.Processor as it arrives, and at each day
// boundary merges the processors of the current window (pipeline.Merge)
// and rebuilds the behavioral model — graphs, projections, embeddings —
// from the merged aggregates, so no raw observations are retained or
// replayed and the memory footprint is bounded by the aggregate size,
// not the traffic volume. Each remodel warm-starts LINE with the
// previous window's vectors for domains that persist across windows,
// cutting the SGD sample budget. The SVM is retrained on the currently
// known labels, and alerts are emitted for domains that newly enter the
// top of the suspicion ranking. Domains already alerted are not
// re-alerted, so the output is an incident feed rather than a ranking
// dump.
//
//maldlint:deterministic
package stream

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

// Labeler supplies the currently known labels when a model is rebuilt.
// Implementations typically wrap a threat-intelligence service; labels
// may grow day over day as intel feeds update.
type Labeler func(candidates []string) (domains []string, labels []int)

// Config parameterizes a Rolling detector.
type Config struct {
	// Start anchors day boundaries.
	Start time.Time
	// WindowDays is how many most-recent days of traffic each model sees
	// (default 3).
	WindowDays int
	// FlagFraction bounds the alert volume per remodel: the top fraction
	// of retained domains by score is eligible for alerting (default
	// 0.05).
	FlagFraction float64
	// MinScoreRank guards tiny windows: at least this many domains are
	// eligible regardless of FlagFraction (default 10).
	MinScoreRank int
	// Detector carries the model configuration (embedding size, SVM
	// parameters, seeds); Start/Days are managed by Rolling.
	Detector core.Config
	// Labeler supplies training labels at each remodel; required.
	Labeler Labeler
	// FoldIn, when set, receives fold-in relations for every domain
	// observed in a window but pruned out of its model, timestamped at
	// the day boundary (stream time). Share the cache with a
	// serve.Server to let it score the window's unknown domains.
	FoldIn *core.FoldInCache
	// Metrics, when set, receives checkpoint/restore/degradation
	// instrumentation: maldomain_checkpoints_total{result},
	// maldomain_checkpoint_bytes, maldomain_checkpoint_last_unix_seconds,
	// maldomain_checkpoint_write_seconds, maldomain_restores_total{result},
	// and maldomain_degraded_days_total.
	Metrics *obsv.Registry
	// Shards, when greater than 1, runs ingestion through a supervised
	// shard pool: observations are partitioned by device across Shards
	// workers, each aggregating independently, and every EndOfDay merges
	// the shard aggregates back into the day's processor. Because the
	// merge is deterministic and order-independent, the alert feed and
	// checkpoint bytes are identical to a serial run for any shard count
	// — Shards is excluded from the checkpoint fingerprint, so a
	// checkpoint taken at one shard count restores at another. Worker
	// crashes and hangs are retried with backoff; retry exhaustion
	// quarantines the shard and surfaces through ShardDegraded. Sharded
	// mode expects EndOfDay at every day boundary in order (the usual
	// streaming protocol); skipping a boundary folds the skipped day's
	// aggregates into the next closed day.
	Shards int
	// ShardDir, when set alongside Shards, gives the pool a scratch
	// directory for per-shard mid-stream checkpoints, bounding how much
	// of the current day a crashed shard worker must replay from memory.
	// The files are process-scratch, not durable state.
	ShardDir string
}

func (c Config) withDefaults() (Config, error) {
	if c.Labeler == nil {
		return c, errors.New("stream: Config.Labeler is required")
	}
	if c.WindowDays <= 0 {
		c.WindowDays = 3
	}
	if c.FlagFraction <= 0 {
		c.FlagFraction = 0.05
	}
	if c.MinScoreRank <= 0 {
		c.MinScoreRank = 10
	}
	return c, nil
}

// Alert is one newly surfaced suspicious domain.
type Alert struct {
	// Day is the day index (since Config.Start) whose remodel produced
	// the alert.
	Day int
	// Domain is the flagged e2LD.
	Domain string
	// Score is the SVM decision value at flag time.
	Score float64
}

// Rolling is the streaming detector. Feed observations with Consume in
// any order within a day; call EndOfDay at each day boundary to remodel
// and collect alerts. Not safe for concurrent use.
type Rolling struct {
	cfg Config

	days    map[int]*pipeline.Processor
	lastDay int
	flagged map[string]bool

	// floor is the last day boundary a restored checkpoint covers;
	// Consume drops observations at or before it (their aggregates are
	// already represented) and EndOfDay refuses to re-run it. -1 for a
	// fresh detector.
	floor int

	// prevIndex and prevEmb hold the last successful remodel's retained
	// domain index and per-view embeddings; the next remodel seeds the
	// embedder from them for every domain that persists across windows
	// (through core.Config.EmbedInit, backend-agnostically).
	prevIndex map[string]int
	prevEmb   map[bipartite.View]*core.Embedding

	// pool is the sharded-ingestion supervisor when Config.Shards > 1,
	// nil in serial mode. shardDeg is the degraded-merge report from the
	// most recent EndOfDay (nil when every shard contributed).
	pool     *shard.Pool
	shardDeg *shard.Degraded
}

// New returns a Rolling detector.
func New(cfg Config) (*Rolling, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Rolling{
		cfg:     cfg,
		days:    make(map[int]*pipeline.Processor),
		lastDay: -1,
		floor:   -1,
		flagged: make(map[string]bool),
	}
	if err := r.attachPool(); err != nil {
		return nil, err
	}
	return r, nil
}

// attachPool creates the shard supervisor for sharded ingestion. The
// pool shares the detector's DHCP table, suffix table, and seed so
// shard-side day processors are configured exactly like serial ones.
func (r *Rolling) attachPool() error {
	if r.cfg.Shards <= 1 {
		return nil
	}
	pool, err := shard.New(shard.Config{
		Shards:   r.cfg.Shards,
		Start:    r.cfg.Start,
		DHCP:     r.cfg.Detector.DHCP,
		Suffixes: r.cfg.Detector.Suffixes,
		Dir:      r.cfg.ShardDir,
		Seed:     r.cfg.Detector.Seed,
		Metrics:  r.cfg.Metrics,
	})
	if err != nil {
		return fmt.Errorf("stream: creating shard pool: %w", err)
	}
	r.pool = pool
	return nil
}

// Close stops the shard workers in sharded mode; a serial detector
// needs no teardown and Close is a no-op. Safe to call more than once.
func (r *Rolling) Close() error {
	if r.pool == nil {
		return nil
	}
	return r.pool.Close()
}

// ShardDegraded reports the shard pool's degraded-merge report from the
// most recent EndOfDay: nil when every shard contributed (or in serial
// mode), otherwise the day, the missing partitions, and how many
// observations they dropped. The detector keeps running degraded —
// models are built over the healthy shards' aggregates.
func (r *Rolling) ShardDegraded() *shard.Degraded { return r.shardDeg }

// Consume folds one observation into its day's aggregation processor.
// Observations timestamped before Config.Start are clamped into day 0
// rather than dropped: captures usually begin mid-flight, and queries
// from just before the anchor still belong to the first window. No raw
// observation is retained — each day holds only its processor's
// aggregates.
func (r *Rolling) Consume(in pipeline.Input) {
	day := int(in.Time.Sub(r.cfg.Start) / (24 * time.Hour))
	if day < 0 {
		day = 0
	}
	if day <= r.floor {
		// Already represented by the restored checkpoint: a caller
		// replaying its input stream after Restore need not filter it.
		return
	}
	if r.pool != nil {
		r.pool.Consume(in)
		if day > r.lastDay {
			r.lastDay = day
		}
		return
	}
	p := r.days[day]
	if p == nil {
		// Every per-day processor shares the window anchor so minute, day,
		// and bucket indices line up when the window is merged.
		p = pipeline.NewProcessor(pipeline.Config{
			Start:    r.cfg.Start,
			Days:     day + 1,
			DHCP:     r.cfg.Detector.DHCP,
			Suffixes: r.cfg.Detector.Suffixes,
		})
		r.days[day] = p
	}
	p.Consume(in)
	if day > r.lastDay {
		r.lastDay = day
	}
}

// Window returns the day indices a remodel at day would cover.
func (r *Rolling) window(day int) []int {
	var out []int
	for d := day - r.cfg.WindowDays + 1; d <= day; d++ {
		if d >= 0 {
			out = append(out, d)
		}
	}
	return out
}

// remodel merges the window's per-day aggregates and builds a detector
// over them, warm-starting the embeddings from the previous remodel.
// The merged processor is returned alongside the detector so the
// fold-in feeder can read the window's aggregates.
func (r *Rolling) remodel(day int) (*core.Detector, *pipeline.Processor, error) {
	var procs []*pipeline.Processor
	for _, d := range r.window(day) {
		if p := r.days[d]; p != nil {
			procs = append(procs, p)
		}
	}
	if len(procs) == 0 {
		return nil, nil, fmt.Errorf("stream: no traffic in window ending day %d", day)
	}
	// The window guard rejects day cursors that have drifted further
	// apart than the window itself — per-day processors within one
	// window can never legitimately do that, so skew means the caller
	// mixed aggregates from different runs.
	merged, err := pipeline.MergeWindow(r.cfg.WindowDays, procs...)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: merging window ending day %d: %w", day, err)
	}
	if merged.TotalQueries() == 0 {
		return nil, nil, fmt.Errorf("stream: no traffic in window ending day %d", day)
	}
	cfg := withWindow(r.cfg.Detector, r.cfg.Start, day)
	cfg.EmbedInit = r.embedInit
	det := core.NewDetectorWith(cfg, merged)
	if err := det.BuildModel(); err != nil {
		return nil, nil, fmt.Errorf("stream: remodel at day %d: %w", day, err)
	}
	r.rememberModel(det)
	return det, merged, nil
}

// embedInit implements core.Config.EmbedInit over the previous remodel's
// vectors: domains present in the last window keep their embedding as
// the SGD starting point, new domains start random. A nil return (no
// previous model, or no overlap) falls back to a cold start.
func (r *Rolling) embedInit(view bipartite.View, domains []string) [][]float64 {
	emb := r.prevEmb[view]
	if emb == nil {
		return nil
	}
	init := make([][]float64, len(domains))
	hits := 0
	for i, d := range domains {
		if j, ok := r.prevIndex[d]; ok {
			init[i] = emb.Vectors[j]
			hits++
		}
	}
	if hits == 0 {
		return nil
	}
	return init
}

// rememberModel stores det's retained domains and embeddings as the warm
// start for the next remodel.
func (r *Rolling) rememberModel(det *core.Detector) {
	domains, err := det.Domains()
	if err != nil {
		return
	}
	index := make(map[string]int, len(domains))
	for i, d := range domains {
		index[d] = i
	}
	embs := make(map[bipartite.View]*core.Embedding, len(bipartite.Views))
	for _, v := range bipartite.Views {
		emb, err := det.Embedding(v)
		if err != nil {
			return
		}
		embs[v] = emb
	}
	r.prevIndex, r.prevEmb = index, embs
}

// DegradedError reports a day boundary that could not produce a fresh
// model: the merge, remodel, or classifier training failed. The
// detector is still healthy — expired days were evicted, the previous
// remodel's warm-start state is retained, and traffic can keep flowing
// into Consume — but no alerts were produced for this day. Callers
// detect it with errors.As and keep streaming.
type DegradedError struct {
	// Day is the day boundary whose remodel failed.
	Day int
	// Stage names where the failure happened: "remodel" or "train".
	Stage string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("stream: day %d degraded (%s failed): %v", e.Day, e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *DegradedError) Unwrap() error { return e.Err }

// EndOfDay remodels over the window ending at day and returns alerts
// for newly flagged domains. Per-day aggregates older than the window
// are released in every path, including failures: a remodel or training
// error does not abort the day but surfaces as a *DegradedError, with
// the previous model's warm-start state intact so the next boundary can
// recover.
func (r *Rolling) EndOfDay(day int) ([]Alert, error) {
	if day <= r.floor {
		return nil, fmt.Errorf("stream: day %d already covered by the restored checkpoint (through day %d)",
			day, r.floor)
	}
	if r.pool != nil {
		// Day-boundary barrier: collect every shard's aggregates for this
		// day (and any earlier still-open day) and merge them into the
		// same per-day processor a serial run would have built. Quarantine
		// never fails the boundary — the merge covers the healthy shards
		// and the loss is reported through ShardDegraded.
		merged, deg, err := r.pool.CloseDay(day)
		if err != nil {
			return nil, fmt.Errorf("stream: closing shard pool at day %d: %w", day, err)
		}
		if merged != nil {
			r.days[day] = merged
		}
		r.shardDeg = deg
	}
	alerts, stage, err := r.modelDay(day)
	// Evict in all paths: a bad day must not pin its window in memory
	// forever (aggregates older than any future window are useless even
	// to a later retry).
	r.evict(day)
	if err != nil {
		if m := r.cfg.Metrics; m != nil {
			m.Counter("maldomain_degraded_days_total",
				"Day boundaries that produced no model (remodel or training failed).").Inc()
		}
		return nil, &DegradedError{Day: day, Stage: stage, Err: err}
	}
	return alerts, nil
}

// modelDay runs the remodel → train → rank sequence for one day
// boundary, returning the failing stage on error.
func (r *Rolling) modelDay(day int) ([]Alert, string, error) {
	det, merged, err := r.remodel(day)
	if err != nil {
		return nil, "remodel", err
	}
	retained, err := det.Domains()
	if err != nil {
		return nil, "remodel", err
	}
	domains, labels := r.cfg.Labeler(retained)
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		return nil, "train", fmt.Errorf("stream: training at day %d: %w", day, err)
	}
	// A healthy model is the moment to publish the window's pruned
	// domains as fold-in evidence: the relations reference exactly the
	// retained set this model scores against.
	r.feedFoldIn(day, retained, merged.Stats())

	type scored struct {
		domain string
		score  float64
	}
	var all []scored
	for _, d := range retained {
		if s, ok := clf.Score(d); ok {
			all = append(all, scored{d, s})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	budget := int(r.cfg.FlagFraction * float64(len(all)))
	if budget < r.cfg.MinScoreRank {
		budget = r.cfg.MinScoreRank
	}
	if budget > len(all) {
		budget = len(all)
	}

	var alerts []Alert
	labelOf := make(map[string]int, len(domains))
	for i, d := range domains {
		labelOf[d] = labels[i]
	}
	for _, sc := range all[:budget] {
		if r.flagged[sc.domain] {
			continue
		}
		if l, known := labelOf[sc.domain]; known && l == 1 {
			// Already-known malicious domains need no alert; the feed is
			// for new discoveries.
			r.flagged[sc.domain] = true
			continue
		}
		r.flagged[sc.domain] = true
		alerts = append(alerts, Alert{Day: day, Domain: sc.domain, Score: sc.score})
	}
	return alerts, "", nil
}

// evict releases per-day aggregates that have fallen out of every
// window a remodel at or after day could cover.
func (r *Rolling) evict(day int) {
	for d := range r.days {
		if d <= day-r.cfg.WindowDays {
			delete(r.days, d)
		}
	}
}

// BufferedDays reports how many per-day aggregation processors are
// currently retained.
func (r *Rolling) BufferedDays() int { return len(r.days) }

// withWindow clamps a detector config to the rolling window.
func withWindow(cfg core.Config, start time.Time, day int) core.Config {
	cfg.Start = start
	cfg.Days = day + 1
	return cfg
}

// Package stream provides the rolling deployment mode the paper's
// introduction motivates: "detecting malicious domains in real-time".
//
// The batch pipeline models a whole capture at once; a deployed system
// instead observes traffic continuously and must surface newly active
// malicious domains every day. Rolling keeps a sliding window of recent
// days, rebuilds the behavioral model at each day boundary (graphs,
// projections, embeddings — all unsupervised), retrains the SVM on the
// currently known labels, and emits alerts for domains that newly enter
// the top of the suspicion ranking. Domains already alerted are not
// re-alerted, so the output is an incident feed rather than a ranking
// dump.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// Labeler supplies the currently known labels when a model is rebuilt.
// Implementations typically wrap a threat-intelligence service; labels
// may grow day over day as intel feeds update.
type Labeler func(candidates []string) (domains []string, labels []int)

// Config parameterizes a Rolling detector.
type Config struct {
	// Start anchors day boundaries.
	Start time.Time
	// WindowDays is how many most-recent days of traffic each model sees
	// (default 3).
	WindowDays int
	// FlagFraction bounds the alert volume per remodel: the top fraction
	// of retained domains by score is eligible for alerting (default
	// 0.05).
	FlagFraction float64
	// MinScoreRank guards tiny windows: at least this many domains are
	// eligible regardless of FlagFraction (default 10).
	MinScoreRank int
	// Detector carries the model configuration (embedding size, SVM
	// parameters, seeds); Start/Days are managed by Rolling.
	Detector core.Config
	// Labeler supplies training labels at each remodel; required.
	Labeler Labeler
}

func (c Config) withDefaults() (Config, error) {
	if c.Labeler == nil {
		return c, errors.New("stream: Config.Labeler is required")
	}
	if c.WindowDays <= 0 {
		c.WindowDays = 3
	}
	if c.FlagFraction <= 0 {
		c.FlagFraction = 0.05
	}
	if c.MinScoreRank <= 0 {
		c.MinScoreRank = 10
	}
	return c, nil
}

// Alert is one newly surfaced suspicious domain.
type Alert struct {
	// Day is the day index (since Config.Start) whose remodel produced
	// the alert.
	Day int
	// Domain is the flagged e2LD.
	Domain string
	// Score is the SVM decision value at flag time.
	Score float64
}

// Rolling is the streaming detector. Feed observations with Consume in
// any order within a day; call EndOfDay at each day boundary to remodel
// and collect alerts. Not safe for concurrent use.
type Rolling struct {
	cfg Config

	days    map[int][]pipeline.Input
	lastDay int
	flagged map[string]bool
}

// New returns a Rolling detector.
func New(cfg Config) (*Rolling, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Rolling{
		cfg:     cfg,
		days:    make(map[int][]pipeline.Input),
		lastDay: -1,
		flagged: make(map[string]bool),
	}, nil
}

// Consume buffers one observation into its day bucket.
func (r *Rolling) Consume(in pipeline.Input) {
	day := int(in.Time.Sub(r.cfg.Start) / (24 * time.Hour))
	if day < 0 {
		day = 0
	}
	r.days[day] = append(r.days[day], in)
	if day > r.lastDay {
		r.lastDay = day
	}
}

// Window returns the day indices a remodel at day would cover.
func (r *Rolling) window(day int) []int {
	var out []int
	for d := day - r.cfg.WindowDays + 1; d <= day; d++ {
		if d >= 0 {
			out = append(out, d)
		}
	}
	return out
}

// EndOfDay remodels over the window ending at day and returns alerts for
// newly flagged domains. Buffers older than the window are released.
func (r *Rolling) EndOfDay(day int) ([]Alert, error) {
	window := r.window(day)
	det := core.NewDetector(withWindow(r.cfg.Detector, r.cfg.Start, day))
	n := 0
	for _, d := range window {
		for _, in := range r.days[d] {
			det.Consume(in)
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("stream: no traffic in window ending day %d", day)
	}
	if err := det.BuildModel(); err != nil {
		return nil, fmt.Errorf("stream: remodel at day %d: %w", day, err)
	}
	retained, err := det.Domains()
	if err != nil {
		return nil, err
	}
	domains, labels := r.cfg.Labeler(retained)
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		return nil, fmt.Errorf("stream: training at day %d: %w", day, err)
	}

	type scored struct {
		domain string
		score  float64
	}
	var all []scored
	for _, d := range retained {
		if s, ok := clf.Score(d); ok {
			all = append(all, scored{d, s})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	budget := int(r.cfg.FlagFraction * float64(len(all)))
	if budget < r.cfg.MinScoreRank {
		budget = r.cfg.MinScoreRank
	}
	if budget > len(all) {
		budget = len(all)
	}

	var alerts []Alert
	labelOf := make(map[string]int, len(domains))
	for i, d := range domains {
		labelOf[d] = labels[i]
	}
	for _, sc := range all[:budget] {
		if r.flagged[sc.domain] {
			continue
		}
		if l, known := labelOf[sc.domain]; known && l == 1 {
			// Already-known malicious domains need no alert; the feed is
			// for new discoveries.
			r.flagged[sc.domain] = true
			continue
		}
		r.flagged[sc.domain] = true
		alerts = append(alerts, Alert{Day: day, Domain: sc.domain, Score: sc.score})
	}

	// Evict days that have fallen out of every future window.
	for d := range r.days {
		if d <= day-r.cfg.WindowDays {
			delete(r.days, d)
		}
	}
	return alerts, nil
}

// BufferedDays reports how many day buckets are currently retained.
func (r *Rolling) BufferedDays() int { return len(r.days) }

// withWindow clamps a detector config to the rolling window.
func withWindow(cfg core.Config, start time.Time, day int) core.Config {
	cfg.Start = start
	cfg.Days = day + 1
	return cfg
}

// Package graph provides the weighted undirected graph representation
// and O(1) weighted sampling machinery (Walker alias tables) used by the
// LINE embedding stage: edge sampling proportional to Jaccard weights and
// negative-sampling noise distributions over vertex degree (§5.2).
package graph

import (
	"fmt"

	"repro/internal/mathx"
)

// Weighted is an undirected weighted graph over vertices [0, N). It is
// immutable after Build and safe for concurrent reads.
type Weighted struct {
	N int
	// EdgesU/EdgesV/EdgesW are parallel edge arrays with U < V.
	EdgesU []int32
	EdgesV []int32
	EdgesW []float64
	// Degree[v] is the weighted degree (sum of incident edge weights).
	Degree []float64
	// adj is the CSR adjacency: neighbors of v are adjTo[adjOff[v]:adjOff[v+1]].
	adjOff []int32
	adjTo  []int32
	adjW   []float64
}

// Edge is one weighted undirected edge.
type Edge struct {
	U, V int32
	W    float64
}

// Build constructs a Weighted graph over n vertices from an edge list.
// Edge endpoints must lie in [0, n) and weights must be positive.
func Build(n int, edges []Edge) (*Weighted, error) {
	g := &Weighted{
		N:      n,
		EdgesU: make([]int32, 0, len(edges)),
		EdgesV: make([]int32, 0, len(edges)),
		EdgesW: make([]float64, 0, len(edges)),
		Degree: make([]float64, n),
	}
	deg := make([]int32, n+1)
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e.U)
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("graph: non-positive weight %v on edge (%d,%d)", e.W, e.U, e.V)
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		g.EdgesU = append(g.EdgesU, u)
		g.EdgesV = append(g.EdgesV, v)
		g.EdgesW = append(g.EdgesW, e.W)
		g.Degree[u] += e.W
		g.Degree[v] += e.W
		deg[u+1]++
		deg[v+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g.adjOff = deg
	g.adjTo = make([]int32, 2*len(g.EdgesU))
	g.adjW = make([]float64, 2*len(g.EdgesU))
	cursor := make([]int32, n)
	for i := range g.EdgesU {
		u, v, w := g.EdgesU[i], g.EdgesV[i], g.EdgesW[i]
		pu := g.adjOff[u] + cursor[u]
		g.adjTo[pu], g.adjW[pu] = v, w
		cursor[u]++
		pv := g.adjOff[v] + cursor[v]
		g.adjTo[pv], g.adjW[pv] = u, w
		cursor[v]++
	}
	return g, nil
}

// EdgeCount returns the number of undirected edges.
func (g *Weighted) EdgeCount() int { return len(g.EdgesU) }

// Neighbors returns the neighbor ids and weights of v as read-only
// slices backed by the graph's storage.
func (g *Weighted) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := g.adjOff[v], g.adjOff[v+1]
	return g.adjTo[lo:hi], g.adjW[lo:hi]
}

// AliasTable supports O(1) sampling from a fixed discrete distribution
// (Walker's alias method). Construct once; Sample is safe for concurrent
// use with per-goroutine RNGs.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds a sampler over weights (non-negative, at least one
// positive).
func NewAliasTable(weights []float64) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("graph: empty weight vector")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("graph: negative weight %v at %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("graph: all weights zero")
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

// Sample draws one index distributed according to the table's weights.
func (t *AliasTable) Sample(rng *mathx.RNG) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

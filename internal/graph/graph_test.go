package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestBuildAdjacency(t *testing.T) {
	g, err := Build(4, []Edge{
		{U: 0, V: 1, W: 1},
		{U: 2, V: 1, W: 2}, // unordered endpoints get canonicalized
		{U: 0, V: 3, W: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	ns, ws := g.Neighbors(1)
	if len(ns) != 2 {
		t.Fatalf("vertex 1 neighbors = %v", ns)
	}
	sum := ws[0] + ws[1]
	if math.Abs(sum-3) > 1e-12 {
		t.Errorf("vertex 1 incident weight = %v, want 3", sum)
	}
	if math.Abs(g.Degree[1]-3) > 1e-12 || math.Abs(g.Degree[0]-1.5) > 1e-12 {
		t.Errorf("degrees = %v", g.Degree)
	}
	if ns2, _ := g.Neighbors(2); len(ns2) != 1 || ns2[0] != 1 {
		t.Errorf("vertex 2 neighbors = %v", ns2)
	}
}

func TestBuildRejectsBadEdges(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"out of range", 2, []Edge{{U: 0, V: 5, W: 1}}},
		{"self loop", 2, []Edge{{U: 1, V: 1, W: 1}}},
		{"zero weight", 2, []Edge{{U: 0, V: 1, W: 0}}},
		{"negative weight", 2, []Edge{{U: 0, V: 1, W: -1}}},
	}
	for _, c := range cases {
		if _, err := Build(c.n, c.edges); err == nil {
			t.Errorf("%s: Build accepted invalid input", c.name)
		}
	}
}

func TestBuildEmptyGraph(t *testing.T) {
	g, err := Build(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 0 {
		t.Fatal("empty graph has edges")
	}
	if ns, _ := g.Neighbors(0); len(ns) != 0 {
		t.Fatal("isolated vertex has neighbors")
	}
}

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	tab, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(5)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Sample(rng)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := float64(draws) * w / total
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("outcome %d: count %d, expected ≈%.0f", i, counts[i], want)
		}
	}
}

func TestAliasTableSingleOutcome(t *testing.T) {
	tab, err := NewAliasTable([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(1)
	for i := 0; i < 100; i++ {
		if tab.Sample(rng) != 0 {
			t.Fatal("single-outcome table sampled nonzero")
		}
	}
}

func TestAliasTableErrors(t *testing.T) {
	if _, err := NewAliasTable(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAliasTable([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewAliasTable([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

// Property: alias table sampling never returns an index with zero weight
// and always returns a valid index.
func TestAliasTableSupport(t *testing.T) {
	f := func(seed uint64, raw [6]uint8) bool {
		weights := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			weights[i] = float64(r % 8)
			if weights[i] > 0 {
				any = true
			}
		}
		if !any {
			return true // invalid input, skip
		}
		tab, err := NewAliasTable(weights)
		if err != nil {
			return false
		}
		rng := mathx.NewRNG(seed)
		for i := 0; i < 500; i++ {
			k := tab.Sample(rng)
			if k < 0 || k >= len(weights) || weights[k] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR adjacency is consistent with the edge arrays.
func TestAdjacencyConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 5 + rng.Intn(20)
		var edges []Edge
		seen := make(map[[2]int32]bool)
		for i := 0; i < 3*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int32{u, v}] {
				continue
			}
			seen[[2]int32{u, v}] = true
			edges = append(edges, Edge{U: u, V: v, W: rng.Float64() + 0.01})
		}
		g, err := Build(n, edges)
		if err != nil {
			return false
		}
		// Total adjacency entries must be 2x edges; each edge must appear
		// from both endpoints with equal weight.
		count := 0
		for v := int32(0); int(v) < n; v++ {
			ns, ws := g.Neighbors(v)
			count += len(ns)
			for i, u := range ns {
				found := false
				back, bw := g.Neighbors(u)
				for j, x := range back {
					if x == v && bw[j] == ws[i] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return count == 2*g.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 10000)
	rng := mathx.NewRNG(3)
	for i := range weights {
		weights[i] = rng.Float64() + 0.001
	}
	tab, err := NewAliasTable(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Sample(rng)
	}
}

#!/usr/bin/env bash
# check.sh — the tier-1+ correctness gate for this repository.
#
# Runs, in order: formatting, go vet, build, the maldlint static
# analyzer, the full test suite under the race detector, a
# train/score persistence round trip on a tiny generated trace, and a
# short fuzz smoke for each native fuzz target. Every step must pass;
# the script stops at the first failure.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target -fuzztime for the smoke stage (default 10s;
#             pass 0 to skip fuzzing, e.g. in quick local iterations).

set -euo pipefail
cd "$(dirname "$0")/.."

fuzztime="${1:-10s}"

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> maldlint ./..."
go run ./cmd/maldlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> maldetect train/score round trip"
smokedir="$(mktemp -d)"
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/dnsgen -scale small -seed 7 \
    -out "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv"
go run ./cmd/maldetect train -seed 7 \
    -trace "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv" \
    -out "$smokedir/model.bin"
go run ./cmd/maldetect score -model "$smokedir/model.bin" -top 5 \
    >"$smokedir/scores.txt"
grep -q '^top 5 suspicious domains:' "$smokedir/scores.txt"

echo "==> benchmark smoke (scripts/bench.sh short)"
scripts/bench.sh short

if [ "$fuzztime" != "0" ]; then
    echo "==> fuzz smoke (${fuzztime} per target)"
    go test -run='^$' -fuzz='^FuzzDecodeMessage$' -fuzztime="$fuzztime" ./internal/dnswire
    go test -run='^$' -fuzz='^FuzzParseETLD$' -fuzztime="$fuzztime" ./internal/etld
fi

echo "==> all checks passed"

#!/usr/bin/env bash
# check.sh — the tier-1+ correctness gate for this repository.
#
# Runs, in order: formatting, go vet, build, the maldlint static
# analyzer (against the committed baseline, plus a -json schema smoke),
# the escape-analysis gate for the scoring hot path
# (scripts/alloccheck.sh against its committed baseline), the full
# test suite under the race detector, a train/score persistence round
# trip on a tiny generated trace, a serving-daemon smoke
# (score/batch/404/healthz/metrics over HTTP, an observe→score fold-in
# round trip for an unseen domain, a ~1s loadgen burst that must
# complete error-free, SIGHUP hot reload, graceful SIGTERM
# shutdown), a crash-recovery smoke (streaming run SIGKILLed
# mid-window, resumed from its checkpoint, feed compared byte-for-byte
# against an uninterrupted run), and a short fuzz smoke for each
# native fuzz target. Every step must pass; the script stops at the
# first failure.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target -fuzztime for the smoke stage (default 10s;
#             pass 0 to skip fuzzing, e.g. in quick local iterations).

set -euo pipefail
cd "$(dirname "$0")/.."

fuzztime="${1:-10s}"

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> maldlint ./... (baseline: .maldlint-baseline.json)"
go run ./cmd/maldlint -baseline .maldlint-baseline.json ./...

echo "==> maldlint -json schema smoke"
if command -v python3 >/dev/null 2>&1; then
    go run ./cmd/maldlint -json -baseline .maldlint-baseline.json ./... |
        python3 -m json.tool >/dev/null
else
    echo "python3 not found; JSON schema covered by cmd/maldlint tests"
fi

echo "==> escape-analysis gate for the scoring hot path"
scripts/alloccheck.sh

echo "==> go test -race ./..."
go test -race ./...

echo "==> maldetect train/score round trip"
smokedir="$(mktemp -d)"
serve_pid=""
stream_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    [ -n "$stream_pid" ] && kill -9 "$stream_pid" 2>/dev/null || true
    rm -rf "$smokedir"
}
trap cleanup EXIT
go run ./cmd/dnsgen -scale small -seed 7 \
    -out "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv"
go build -o "$smokedir/maldetect" ./cmd/maldetect
"$smokedir/maldetect" train -seed 7 \
    -trace "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv" \
    -out "$smokedir/model.bin"
"$smokedir/maldetect" score -model "$smokedir/model.bin" -top 5 \
    >"$smokedir/scores.txt"
grep -q '^top 5 suspicious domains:' "$smokedir/scores.txt"

echo "==> maldetect pluggable-backend round trip (mf + labelprop)"
# The registry listing must name every built-in backend, and a
# non-default selection must train, persist, reload, and score with the
# backend names surfaced in the fingerprint.
"$smokedir/maldetect" backends >"$smokedir/backends.txt"
for name in line mf svm labelprop ensemble all query+ip; do
    grep -q "^  $name" "$smokedir/backends.txt"
done
"$smokedir/maldetect" train -seed 7 \
    -embedder mf -classifier labelprop \
    -trace "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv" \
    -out "$smokedir/model-mf.bin" >"$smokedir/train-mf.txt"
grep -q 'embedder=mf classifier=labelprop' "$smokedir/train-mf.txt"
"$smokedir/maldetect" score -model "$smokedir/model-mf.bin" -top 5 \
    >"$smokedir/scores-mf.txt" 2>"$smokedir/score-mf.log"
grep -q '^top 5 suspicious domains:' "$smokedir/scores-mf.txt"
grep -q 'backends: embedder=mf classifier=labelprop' "$smokedir/score-mf.log"

echo "==> maldetect serve smoke"
# Start the daemon on an ephemeral port and parse the bound address
# from its startup log.
"$smokedir/maldetect" serve -model "$smokedir/model.bin" \
    -addr 127.0.0.1:0 2>"$smokedir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's|.*serving on http://\([^ ]*\)$|\1|p' "$smokedir/serve.log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve daemon did not start:" >&2
    cat "$smokedir/serve.log" >&2
    exit 1
fi
# One known domain (first ranked row of the score output) and one
# unknown domain; then batch, health, and metrics. Curl output is
# captured into variables — piping straight into `grep -q` would close
# the pipe at the first match and fail curl under pipefail.
known="$(awk 'NR==3 {print $1}' "$smokedir/scores.txt")"
grep -q '"score"' <<<"$(curl -fsS "http://$addr/v1/score/$known")"
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/score/not-a-real-domain.invalid")"
[ "$code" = 404 ]
grep -q '"known":true' <<<"$(curl -fsS -X POST \
    -d '{"domains":["'"$known"'","not-a-real-domain.invalid"]}' \
    "http://$addr/v1/score/batch")"
grep -q '"status":"ok"' <<<"$(curl -fsS "http://$addr/healthz")"
grep -q '^maldomain_http_requests_total' <<<"$(curl -fsS "http://$addr/metrics")"
# Fold-in round trip: an unseen domain 404s with the structured error
# envelope, POST /v1/observe feeds relations to ranked known domains,
# and the next score is a provisional fold-in verdict with a
# confidence in [0,1].
n2="$(awk 'NR==4 {print $1}' "$smokedir/scores.txt")"
n3="$(awk 'NR==5 {print $1}' "$smokedir/scores.txt")"
grep -q '"code":"unknown_domain"' \
    <<<"$(curl -s "http://$addr/v1/score/folded.invalid")"
grep -q '"entries":1' <<<"$(curl -fsS -X POST -d '{
    "domain":"folded.invalid",
    "relations":[{"view":"query","neighbor":"'"$known"'","weight":2},
                 {"view":"ip","neighbor":"'"$n2"'","weight":1},
                 {"view":"time","neighbor":"'"$n3"'","weight":1}]}' \
    "http://$addr/v1/observe")"
folded="$(curl -fsS "http://$addr/v1/score/folded.invalid")"
grep -q '"known":false' <<<"$folded"
grep -q '"source":"foldin"' <<<"$folded"
conf="$(sed -n 's/.*"confidence":\([0-9.eE+-]*\),.*/\1/p' <<<"$folded")"
awk -v c="$conf" 'BEGIN { exit !(c >= 0 && c <= 1) }'
grep -q '"code":"bad_request"' <<<"$(curl -s -X POST \
    -d '{"domain":"x.invalid","relations":[{"view":"dns","neighbor":"y"}]}' \
    "http://$addr/v1/observe")"
# Load-generator burst: ~1s of paced mixed batch traffic over the
# NDJSON framing; -check fails the script on any error or if nothing
# got through.
"$smokedir/maldetect" loadgen -url "http://$addr" -model "$smokedir/model.bin" \
    -duration 1s -workers 2 -qps 500 -batch 16 -ndjson -retries 2 -check \
    >"$smokedir/loadgen.txt"
grep -q '^loadgen: ' "$smokedir/loadgen.txt"
# SIGHUP hot reload must keep the daemon serving.
kill -HUP "$serve_pid"
for _ in $(seq 1 100); do
    grep -q 'reloaded model' "$smokedir/serve.log" && break
    sleep 0.1
done
grep -q 'reloaded model' "$smokedir/serve.log"
grep -q '"score"' <<<"$(curl -fsS "http://$addr/v1/score/$known")"
grep -q 'maldomain_model_reloads_total{result="ok"} 1' <<<"$(curl -fsS "http://$addr/metrics")"
# Graceful shutdown: SIGTERM must end the process with status 0.
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""

echo "==> maldetect crash-recovery smoke"
# Reference: an uninterrupted streaming run over the same trace.
"$smokedir/maldetect" stream -seed 7 \
    -trace "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv" \
    -feed "$smokedir/ref-alerts.tsv" 2>"$smokedir/ref-stream.log"
# Crashy run: SIGKILL it as soon as the first checkpoint lands (the
# remaining day boundaries are still pending), restart with the same
# flags, and require the resumed feed to be byte-identical to the
# uninterrupted run.
"$smokedir/maldetect" stream -seed 7 \
    -trace "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv" \
    -feed "$smokedir/alerts.tsv" -checkpoint "$smokedir/stream.ckpt" \
    2>"$smokedir/stream.log" &
stream_pid=$!
for _ in $(seq 1 300); do
    [ -f "$smokedir/stream.ckpt" ] && break
    sleep 0.1
done
[ -f "$smokedir/stream.ckpt" ]
kill -9 "$stream_pid" 2>/dev/null || true
wait "$stream_pid" 2>/dev/null || true
stream_pid=""
"$smokedir/maldetect" stream -seed 7 \
    -trace "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv" \
    -feed "$smokedir/alerts.tsv" -checkpoint "$smokedir/stream.ckpt" \
    2>>"$smokedir/stream.log"
grep -q 'resumed from' "$smokedir/stream.log"
cmp "$smokedir/ref-alerts.tsv" "$smokedir/alerts.tsv"

echo "==> sharded-ingestion smoke"
# Chaos suite under the race detector: shard workers are panicked,
# hung, and starved of temp files mid-run, and the recovered merged
# model must hash identically to a serial build.
go test -race -run Chaos ./internal/shard
# A 2-shard streaming run over the same trace must produce a feed
# byte-identical to the serial reference from the crash-recovery smoke.
"$smokedir/maldetect" stream -seed 7 -shards 2 \
    -trace "$smokedir/trace.tsv" -truth "$smokedir/truth.tsv" \
    -feed "$smokedir/shard-alerts.tsv" 2>"$smokedir/shard-stream.log"
cmp "$smokedir/ref-alerts.tsv" "$smokedir/shard-alerts.tsv"

echo "==> benchmark smoke (scripts/bench.sh short)"
scripts/bench.sh short

if [ "$fuzztime" != "0" ]; then
    echo "==> fuzz smoke (${fuzztime} per target)"
    go test -run='^$' -fuzz='^FuzzDecodeMessage$' -fuzztime="$fuzztime" ./internal/dnswire
    go test -run='^$' -fuzz='^FuzzParseETLD$' -fuzztime="$fuzztime" ./internal/etld
    go test -run='^$' -fuzz='^FuzzRestore$' -fuzztime="$fuzztime" ./internal/stream
    go test -run='^$' -fuzz='^FuzzDecodeNDJSON$' -fuzztime="$fuzztime" ./internal/serve
fi

echo "==> all checks passed"

#!/usr/bin/env bash
# check.sh — the tier-1+ correctness gate for this repository.
#
# Runs, in order: formatting, go vet, build, the maldlint static
# analyzer, the full test suite under the race detector, and a short
# fuzz smoke for each native fuzz target. Every step must pass; the
# script stops at the first failure.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target -fuzztime for the smoke stage (default 10s;
#             pass 0 to skip fuzzing, e.g. in quick local iterations).

set -euo pipefail
cd "$(dirname "$0")/.."

fuzztime="${1:-10s}"

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> maldlint ./..."
go run ./cmd/maldlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> benchmark smoke (scripts/bench.sh short)"
scripts/bench.sh short

if [ "$fuzztime" != "0" ]; then
    echo "==> fuzz smoke (${fuzztime} per target)"
    go test -run='^$' -fuzz='^FuzzDecodeMessage$' -fuzztime="$fuzztime" ./internal/dnswire
    go test -run='^$' -fuzz='^FuzzParseETLD$' -fuzztime="$fuzztime" ./internal/etld
fi

echo "==> all checks passed"

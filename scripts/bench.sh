#!/usr/bin/env bash
# bench.sh — benchmark runner for the detection pipeline's hot paths.
#
# full mode (default) runs the microbenchmarks for the three hot stages
# (bipartite projection, LINE training, SVM training) with -benchmem,
# then the root table/figure reproduction benchmarks once each, and
# converts the combined log into BENCH_2.json via cmd/benchjson.
#
# short mode runs each microbenchmark for a single iteration as a smoke
# test (wired into scripts/check.sh) and emits no JSON.
#
# remodel mode runs the streaming warm-vs-cold remodel benchmarks
# (internal/stream) and converts the log into BENCH_3.json: the measured
# value of seeding each window's LINE run from the previous window's
# vectors instead of rebuilding from random initialization.
#
# serve mode runs the scoring-daemon throughput benchmarks
# (internal/serve: single, batch, and parallel request paths through
# the full middleware stack) and converts the log into BENCH_4.json.
#
# Usage: scripts/bench.sh [full|short|remodel|serve]

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

micro_pkgs=(./internal/bipartite ./internal/line ./internal/svm ./internal/serve)

case "$mode" in
short)
    go test -run='^$' -bench=. -benchtime=1x "${micro_pkgs[@]}" | tee "$log"
    ;;
full)
    go test -run='^$' -bench=. -benchmem "${micro_pkgs[@]}" | tee "$log"
    go test -run='^$' -bench=. -benchtime=1x -timeout 60m . | tee -a "$log"
    go run ./cmd/benchjson <"$log" >BENCH_2.json
    echo "wrote BENCH_2.json"
    ;;
remodel)
    go test -run='^$' -bench='^BenchmarkRemodel' -timeout 30m ./internal/stream | tee "$log"
    go run ./cmd/benchjson <"$log" >BENCH_3.json
    echo "wrote BENCH_3.json"
    ;;
serve)
    go test -run='^$' -bench='^BenchmarkServe' -benchmem ./internal/serve | tee "$log"
    go run ./cmd/benchjson <"$log" >BENCH_4.json
    echo "wrote BENCH_4.json"
    ;;
*)
    echo "usage: scripts/bench.sh [full|short|remodel|serve]" >&2
    exit 1
    ;;
esac

#!/usr/bin/env bash
# bench.sh — benchmark runner for the detection pipeline's hot paths.
#
# full mode (default) runs the microbenchmarks for the three hot stages
# (bipartite projection, LINE training, SVM training) with -benchmem,
# then the root table/figure reproduction benchmarks once each, and
# converts the combined log into BENCH_2.json via cmd/benchjson.
#
# short mode runs each microbenchmark for a single iteration as a smoke
# test (wired into scripts/check.sh) and emits no JSON.
#
# remodel mode runs the streaming warm-vs-cold remodel benchmarks
# (internal/stream) and converts the log into BENCH_3.json: the measured
# value of seeding each window's LINE run from the previous window's
# vectors instead of rebuilding from random initialization.
#
# serve mode runs the scoring-daemon throughput benchmarks
# (internal/serve: single, batch, and parallel request paths through
# the full middleware stack) and converts the log into BENCH_4.json.
#
# loadgen mode measures the zero-allocation serving claims end to end:
# it runs the serve handler benchmarks with -benchmem (allocs/op,
# req/sec, domains/sec at the handler level), then trains a small
# model, starts a real daemon on an ephemeral port, drives it with
# `maldetect loadgen` — closed-loop single GETs and NDJSON batches —
# and folds the socket-level reports into the same JSON via
# benchjson -merge, writing BENCH_7.json.
#
# foldin mode runs the fold-in scoring benchmarks — the core engine
# (ScoreObserved cold, cache-warm Score) and the daemon's unknown-
# domain path through the full middleware stack — with -benchmem and
# converts the log into BENCH_9.json: the allocs/op column is the
# ≤2-allocs-after-warm acceptance figure.
#
# ablation mode sweeps the pluggable stage registry's backend grid —
# {line, mf} embedders x {svm, labelprop, ensemble} classifiers — with
# Fig-6-style k-fold cross-validated AUC per cell (cmd/experiments
# -ablation) and converts the log into BENCH_8.json, so backend quality
# regressions are visible next to throughput numbers.
#
# shard mode runs the sharded-ingestion scaling curve (internal/shard:
# a 10x dnsgen trace pushed through a supervised pool at 1, 2, 4, and
# 8 shards, ingest + day-boundary merge per iteration) and converts
# the log into BENCH_10.json. On a single-core host the curve measures
# pure supervision overhead, not speedup — see README.
#
# Usage: scripts/bench.sh [full|short|remodel|serve|loadgen|foldin|ablation|shard]

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

micro_pkgs=(./internal/bipartite ./internal/line ./internal/svm ./internal/serve)

case "$mode" in
short)
    go test -run='^$' -bench=. -benchtime=1x "${micro_pkgs[@]}" | tee "$log"
    ;;
full)
    go test -run='^$' -bench=. -benchmem "${micro_pkgs[@]}" | tee "$log"
    go test -run='^$' -bench=. -benchtime=1x -timeout 60m . | tee -a "$log"
    go run ./cmd/benchjson <"$log" >BENCH_2.json
    echo "wrote BENCH_2.json"
    ;;
remodel)
    go test -run='^$' -bench='^BenchmarkRemodel' -timeout 30m ./internal/stream | tee "$log"
    go run ./cmd/benchjson <"$log" >BENCH_3.json
    echo "wrote BENCH_3.json"
    ;;
serve)
    go test -run='^$' -bench='^BenchmarkServe' -benchmem ./internal/serve | tee "$log"
    go run ./cmd/benchjson <"$log" >BENCH_4.json
    echo "wrote BENCH_4.json"
    ;;
loadgen)
    workdir="$(mktemp -d)"
    serve_pid=""
    trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; rm -rf "$workdir" "$log"' EXIT

    echo "--- handler-level benchmarks (-benchmem)"
    go test -run='^$' -bench='^BenchmarkServe' -benchmem ./internal/serve | tee "$log"

    echo "--- training a small model for the live daemon"
    go run ./cmd/dnsgen -scale small -seed 7 \
        -out "$workdir/trace.tsv" -truth "$workdir/truth.tsv"
    go build -o "$workdir/maldetect" ./cmd/maldetect
    "$workdir/maldetect" train -seed 7 \
        -trace "$workdir/trace.tsv" -truth "$workdir/truth.tsv" \
        -out "$workdir/model.bin"

    echo "--- maldetect loadgen against a live daemon"
    "$workdir/maldetect" serve -model "$workdir/model.bin" \
        -addr 127.0.0.1:0 2>"$workdir/serve.log" &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's|.*serving on http://\([^ ]*\)$|\1|p' "$workdir/serve.log")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "daemon did not start" >&2; cat "$workdir/serve.log" >&2; exit 1; }
    "$workdir/maldetect" loadgen -url "http://$addr" -model "$workdir/model.bin" \
        -duration 5s -workers 4 -retries 2 -check -json \
        -name BenchmarkLoadgenScore >"$workdir/lg_single.json"
    "$workdir/maldetect" loadgen -url "http://$addr" -model "$workdir/model.bin" \
        -duration 5s -workers 2 -batch 500 -ndjson -retries 2 -check -json \
        -name BenchmarkLoadgenBatchNDJSON >"$workdir/lg_batch.json"
    kill -TERM "$serve_pid" && wait "$serve_pid"
    serve_pid=""

    go run ./cmd/benchjson \
        -merge "$workdir/lg_single.json" -merge "$workdir/lg_batch.json" \
        <"$log" >BENCH_7.json
    echo "wrote BENCH_7.json"
    ;;
foldin)
    go test -run='^$' -bench='^BenchmarkFoldIn' -benchmem ./internal/core | tee "$log"
    go test -run='^$' -bench='^BenchmarkServeFoldin' -benchmem ./internal/serve | tee -a "$log"
    go run ./cmd/benchjson <"$log" >BENCH_9.json
    echo "wrote BENCH_9.json"
    ;;
ablation)
    go run ./cmd/experiments -ablation -scale small -seed 1 -kfolds 5 | tee "$log"
    go run ./cmd/benchjson <"$log" >BENCH_8.json
    echo "wrote BENCH_8.json"
    ;;
shard)
    go test -run='^$' -bench='^BenchmarkShardIngest' -benchmem -timeout 30m \
        ./internal/shard | tee "$log"
    go run ./cmd/benchjson <"$log" >BENCH_10.json
    echo "wrote BENCH_10.json"
    ;;
*)
    echo "usage: scripts/bench.sh [full|short|remodel|serve|loadgen|foldin|ablation|shard]" >&2
    exit 1
    ;;
esac

#!/usr/bin/env bash
# bench.sh — benchmark runner for the detection pipeline's hot paths.
#
# full mode (default) runs the microbenchmarks for the three hot stages
# (bipartite projection, LINE training, SVM training) with -benchmem,
# then the root table/figure reproduction benchmarks once each, and
# converts the combined log into BENCH_2.json via cmd/benchjson.
#
# short mode runs each microbenchmark for a single iteration as a smoke
# test (wired into scripts/check.sh) and emits no JSON.
#
# Usage: scripts/bench.sh [full|short]

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

micro_pkgs=(./internal/bipartite ./internal/line ./internal/svm)

case "$mode" in
short)
    go test -run='^$' -bench=. -benchtime=1x "${micro_pkgs[@]}" | tee "$log"
    ;;
full)
    go test -run='^$' -bench=. -benchmem "${micro_pkgs[@]}" | tee "$log"
    go test -run='^$' -bench=. -benchtime=1x -timeout 60m . | tee -a "$log"
    go run ./cmd/benchjson <"$log" >BENCH_2.json
    echo "wrote BENCH_2.json"
    ;;
*)
    echo "usage: scripts/bench.sh [full|short]" >&2
    exit 1
    ;;
esac

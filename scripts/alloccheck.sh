#!/usr/bin/env bash
# alloccheck.sh — escape-analysis gate for the scoring hot path.
#
# Functions annotated with a `//alloccheck:hot` comment line (directly
# above the declaration, in internal/core and internal/serve) are the
# per-request hot path of the serving daemon: Scorer lookups and the
# daemon's score handler. This script runs the compiler's escape
# analysis (go build -gcflags='-m') over both packages, counts
# `escapes to heap` diagnostics inside each annotated function, and
# compares the counts against the committed budget in
# scripts/alloccheck.baseline (one `file:Func N` line per function;
# an unlisted function's budget is 0).
#
# Unlike its earlier informational incarnation, this is a CI gate: a
# change that introduces a new heap escape in an annotated function
# fails check.sh. If the escape is intentional, re-run with -update and
# commit the regenerated baseline alongside the change.
#
# Usage: scripts/alloccheck.sh [-update]

set -euo pipefail
cd "$(dirname "$0")/.."

baseline="scripts/alloccheck.baseline"
update=0
[ "${1:-}" = "-update" ] && update=1

# Locate annotated functions: file, name, start line, end line. The
# marker must sit in the comment block directly above the declaration;
# a function ends at the next column-0 closing brace.
marked="$(awk '
    FNR == 1   { hot = 0; infunc = 0 }
    /^\/\/alloccheck:hot/ { hot = 1; next }
    hot && /^func / {
        name = $0
        sub(/^func +(\([^)]*\) +)?/, "", name)
        sub(/[(\[].*/, "", name)
        start = FNR; fname = FILENAME
        infunc = 1; hot = 0
        next
    }
    hot && !/^\/\// { hot = 0 }
    infunc && /^}/  { print fname, name, start, FNR; infunc = 0 }
' internal/core/*.go internal/serve/*.go)"
# Test files never compile into the serving binary; drop any markers
# that slipped into them.
marked="$(grep -v '_test\.go' <<<"$marked" || true)"

if [ -z "$marked" ]; then
    echo "alloccheck: no //alloccheck:hot annotations found" >&2
    exit 1
fi

# -m diagnostics go to stderr; naming the packages forces their
# recompilation so the diagnostics are produced even on a warm cache.
escapes="$(go build -gcflags='-m' ./internal/core ./internal/serve 2>&1 |
    grep 'escapes to heap' || true)"

budget_for() {
    local key="$1"
    if [ -f "$baseline" ]; then
        awk -v k="$key" '$1 == k { print $2; found = 1 } END { if (!found) print 0 }' "$baseline"
    else
        echo 0
    fi
}

fail=0
newbase=""
while read -r file name start end; do
    count="$(awk -F: -v f="$file" -v s="$start" -v e="$end" \
        '$1 == f && $2 + 0 >= s && $2 + 0 <= e' <<<"$escapes" | wc -l | tr -d ' ')"
    newbase+="$file:$name $count"$'\n'
    budget="$(budget_for "$file:$name")"
    if [ "$count" -gt "$budget" ]; then
        echo "alloccheck: FAIL $file:$name: $count heap escape(s), budget $budget"
        awk -F: -v f="$file" -v s="$start" -v e="$end" \
            '$1 == f && $2 + 0 >= s && $2 + 0 <= e' <<<"$escapes" |
            sed 's/^/alloccheck:   /'
        fail=1
    else
        echo "alloccheck: ok   $file:$name: $count heap escape(s) (budget $budget)"
    fi
done <<<"$marked"

if [ "$update" -eq 1 ]; then
    printf '%s' "$newbase" | sort >"$baseline"
    echo "alloccheck: wrote $baseline"
    exit 0
fi

if [ "$fail" -ne 0 ]; then
    echo "alloccheck: hot-path functions gained heap escapes; fix them or re-baseline with scripts/alloccheck.sh -update" >&2
    exit 1
fi
echo "alloccheck: hot path within allocation budget"

#!/usr/bin/env bash
# alloccheck.sh — escape-analysis report for the scoring hot path.
#
# Runs the compiler's escape analysis (go build -gcflags='-m') over
# internal/core and summarizes heap escapes inside Scorer.Score and
# Scorer.ScoreBatch (internal/core/persist.go), the per-request hot
# path of the serving daemon. The report is informational: the step
# never fails the build (always exits 0), it exists so a PR that makes
# the hot path start allocating is visible in the check.sh transcript.
#
# Usage: scripts/alloccheck.sh

set -uo pipefail
cd "$(dirname "$0")/.."

persist="internal/core/persist.go"

# Line ranges of the two hot-path functions, found by scanning for the
# function declarations and the next top-level closing brace.
ranges="$(awk '
    /^func \(s \*Scorer\) Score\(/       { name="Score"; start=NR }
    /^func \(s \*Scorer\) ScoreBatch\(/  { name="ScoreBatch"; start=NR }
    start && /^}/ { print name, start, NR; start=0 }
' "$persist")"

if [ -z "$ranges" ]; then
    echo "alloccheck: could not locate Scorer.Score/ScoreBatch in $persist (skipping)" >&2
    exit 0
fi

# -m output goes to stderr; force a rebuild of the one package so the
# diagnostics are actually produced.
escapes="$(go build -gcflags='-m' ./internal/core 2>&1 |
    grep "^$persist:" | grep 'escapes to heap' || true)"

total=0
while read -r name start end; do
    count=0
    if [ -n "$escapes" ]; then
        count="$(awk -F: -v s="$start" -v e="$end" \
            '$2 >= s && $2 <= e' <<<"$escapes" | wc -l | tr -d ' ')"
    fi
    echo "alloccheck: Scorer.$name ($persist:$start-$end): $count heap escape(s)"
    if [ "$count" -gt 0 ]; then
        awk -F: -v s="$start" -v e="$end" '$2 >= s && $2 <= e' <<<"$escapes" |
            sed 's/^/alloccheck:   /'
    fi
    total=$((total + count))
done <<<"$ranges"

echo "alloccheck: $total heap escape(s) in the scoring hot path (informational, not a gate)"
exit 0

// Campus detection: the paper's deployment scenario end to end.
//
// It simulates several days of DNS traffic from a campus network with
// planted malware families (Conficker-style DGA, wordlist spam kits,
// phishing, APT C&C), feeds the trace through the full pipeline —
// pre-processing with DHCP device pinning, bipartite behavioral
// modeling, LINE embeddings, SVM — and evaluates detection quality on a
// held-out set labeled through the simulated VirusTotal feeds, exactly
// as §6.1 labels the paper's data.
//
// Run with: go run ./examples/campus-detection
package main

import (
	"fmt"
	"log"
	"sort"

	maldomain "repro"
	"repro/internal/dnssim"
	"repro/internal/eval"
	"repro/internal/mathx"
	"repro/internal/threatintel"
)

func main() {
	const seed = 2024

	fmt.Println("generating campus traffic (150 hosts, 3 days, 4 malware families)...")
	scenario := dnssim.NewScenario(dnssim.SmallScenario(seed))

	det := maldomain.NewDetector(maldomain.Config{
		Start: scenario.Config.Start,
		Days:  scenario.Config.Days,
		DHCP:  scenario.DHCP(),
		Seed:  seed,
	})
	events := 0
	scenario.Generate(func(ev dnssim.Event) {
		det.Consume(maldomain.Observation(ev))
		events++
	})
	fmt.Printf("consumed %d DNS observations\n", events)

	fmt.Println("building behavioral model (graphs, projections, embeddings)...")
	if err := det.BuildModel(); err != nil {
		log.Fatal(err)
	}
	stats, err := det.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retained %d of %d observed e2LDs after pruning\n",
		stats.RetainedE2LDs, stats.ObservedE2LDs)

	// Label through the simulated VirusTotal 60-feed confirmation rule.
	ti := threatintel.NewService(scenario.TruthTable(), threatintel.Config{Seed: seed})
	retained, err := det.Domains()
	if err != nil {
		log.Fatal(err)
	}
	domains, labels := ti.LabeledSet(retained)
	malicious := 0
	for _, l := range labels {
		malicious += l
	}
	fmt.Printf("labeled set: %d domains, %d malicious (%.0f%%)\n",
		len(domains), malicious, 100*float64(malicious)/float64(len(domains)))

	// 70/30 stratified split.
	rng := mathx.NewRNG(seed)
	perm := rng.Perm(len(domains))
	cut := len(domains) * 7 / 10
	var trainD, testD []string
	var trainY, testY []int
	for i, p := range perm {
		if i < cut {
			trainD = append(trainD, domains[p])
			trainY = append(trainY, labels[p])
		} else {
			testD = append(testD, domains[p])
			testY = append(testY, labels[p])
		}
	}

	fmt.Println("training SVM on combined three-view embedding...")
	clf, err := det.TrainClassifier(trainD, trainY)
	if err != nil {
		log.Fatal(err)
	}

	var scores []float64
	for _, d := range testD {
		s, _ := clf.Score(d)
		scores = append(scores, s)
	}
	auc, err := eval.AUC(scores, testY)
	if err != nil {
		log.Fatal(err)
	}
	conf := eval.Confusions(scores, testY)
	fmt.Printf("\nheld-out results over %d domains:\n", len(testD))
	fmt.Printf("  AUC       %.4f  (paper reports 0.94 on its campus trace)\n", auc)
	fmt.Printf("  accuracy  %.3f   precision %.3f   recall %.3f\n",
		conf.Accuracy(), conf.Precision(), conf.Recall())

	// Show the strongest detections with their planted ground truth.
	type hit struct {
		domain string
		score  float64
	}
	var hits []hit
	for i, d := range testD {
		if scores[i] > 0 {
			hits = append(hits, hit{d, scores[i]})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].score > hits[j].score })
	fmt.Println("\nstrongest detections:")
	for i, h := range hits {
		if i >= 10 {
			break
		}
		truth, _ := scenario.Truth(h.domain)
		family := truth.Family
		if family == "" {
			family = "(benign!)"
		}
		fmt.Printf("  %-28s %+.3f  %s\n", h.domain, h.score, family)
	}
}

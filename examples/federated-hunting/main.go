// Federated hunting: the paper's future work (§10) in action.
//
// Three simulated campus networks observe the same global malware
// campaigns through different local populations (distinct hosts, benign
// catalogs and traffic, shared malware families via a common family
// seed). Each campus runs the full behavioral pipeline independently,
// flags suspicious domains with a locally trained classifier, and ships
// a compact report. The federation layer then correlates the reports —
// by domain identity, shared resolution infrastructure, and local
// cluster structure — into cross-network campaigns.
//
// Run with: go run ./examples/federated-hunting
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	maldomain "repro"
	"repro/internal/dnssim"
	"repro/internal/federate"
	"repro/internal/threatintel"
	"repro/internal/xmeans"
)

// campusConfig shrinks the small scenario so three campuses build fast.
func campusConfig(campusSeed uint64) dnssim.Config {
	cfg := dnssim.SmallScenario(campusSeed)
	cfg.Hosts = 90
	cfg.Days = 2
	cfg.BenignDomains = 260
	cfg.FamilySeed = 0xC0FFEE // the shared global threat landscape
	return cfg
}

func main() {
	campuses := []string{"campus-a", "campus-b", "campus-c"}
	var reports []federate.CampusReport

	for i, name := range campuses {
		fmt.Printf("=== %s: building local model...\n", name)
		r, err := runCampus(name, uint64(1000*(i+1)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    flagged %d suspicious domains\n", len(r.Flagged))
		reports = append(reports, r)
	}

	campaigns := federate.Correlate(reports, federate.Config{MinCampuses: 2, MinDomains: 3})
	fmt.Printf("\ncross-network campaigns (%d found):\n", len(campaigns))
	fmt.Print(federate.Summary(campaigns))
	if len(campaigns) > 0 {
		fmt.Println("\nlargest campaign members:")
		c := campaigns[0]
		for i, d := range c.Domains {
			if i >= 12 {
				fmt.Printf("  ... and %d more\n", len(c.Domains)-12)
				break
			}
			fmt.Printf("  %s\n", d)
		}
	}
}

// runCampus builds one campus's detector, trains on its local labeled
// set, and reports everything scoring on the malicious side.
func runCampus(name string, seed uint64) (federate.CampusReport, error) {
	scenario := dnssim.NewScenario(campusConfig(seed))
	det := maldomain.NewDetector(maldomain.Config{
		Start: scenario.Config.Start,
		Days:  scenario.Config.Days,
		DHCP:  scenario.DHCP(),
		Seed:  seed,
	})
	start := time.Now()
	scenario.Generate(func(ev dnssim.Event) { det.Consume(maldomain.Observation(ev)) })
	if err := det.BuildModel(); err != nil {
		return federate.CampusReport{}, err
	}
	fmt.Printf("    model built in %s\n", time.Since(start).Round(time.Second))

	ti := threatintel.NewService(scenario.TruthTable(), threatintel.Config{Seed: seed})
	retained, err := det.Domains()
	if err != nil {
		return federate.CampusReport{}, err
	}
	domains, labels := ti.LabeledSet(retained)
	clf, err := det.TrainClassifier(domains, labels)
	if err != nil {
		return federate.CampusReport{}, err
	}

	// With the paper's heavily regularized C the raw decision threshold 0
	// collapses to the majority class; operating points are chosen on the
	// ROC instead (§6.2). Flag by rank: as many domains as the local
	// labeled malicious population suggests, plus 20% headroom.
	type scored struct {
		domain string
		score  float64
	}
	var all []scored
	for _, d := range retained {
		if s, ok := clf.Score(d); ok {
			all = append(all, scored{d, s})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	malCount := 0
	for _, l := range labels {
		malCount += l
	}
	budget := malCount * 12 / 10
	if budget > len(all) {
		budget = len(all)
	}

	report := federate.CampusReport{
		Campus:    name,
		Flagged:   make(map[string]float64),
		DomainIPs: make(map[string][]string),
	}
	stats := det.Processor().Stats()
	var flaggedList []string
	for _, sc := range all[:budget] {
		report.Flagged[sc.domain] = sc.score
		flaggedList = append(flaggedList, sc.domain)
		if st := stats[sc.domain]; st != nil {
			for ip := range st.IPs {
				report.DomainIPs[sc.domain] = append(report.DomainIPs[sc.domain], ip)
			}
		}
	}
	// Cluster the flagged domains so locality evidence ships too.
	if len(flaggedList) >= 8 {
		res, kept, err := det.ClusterDomains(flaggedList, xmeans.Config{KMin: 2, KMax: 16})
		if err == nil {
			members := res.Members()
			for _, idx := range members {
				var cluster []string
				for _, i := range idx {
					cluster = append(cluster, kept[i])
				}
				report.Clusters = append(report.Clusters, cluster)
			}
		}
	}
	return report, nil
}

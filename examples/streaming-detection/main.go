// Streaming detection: the real-time deployment mode the paper's
// introduction motivates.
//
// Traffic arrives day by day; at each day boundary the rolling detector
// rebuilds the behavioral model over a sliding window, retrains the SVM
// on the labels threat intelligence currently knows (intel lags — half
// the malware families haven't been catalogued yet), and emits an alert
// feed of newly suspicious domains. The example prints each day's alerts
// with their ground truth, showing the system surfacing uncatalogued
// malicious domains as they become active.
//
// Run with: go run ./examples/streaming-detection
package main

import (
	"fmt"
	"log"

	maldomain "repro"
	"repro/internal/dnssim"
	"repro/internal/threatintel"
)

func main() {
	cfg := dnssim.SmallScenario(808)
	cfg.Hosts = 100
	cfg.BenignDomains = 300
	scenario := dnssim.NewScenario(cfg)
	ti := threatintel.NewService(scenario.TruthTable(), threatintel.Config{Seed: 808})

	// Intel knows only the even-indexed malicious domains; the rest are
	// future discoveries.
	known := make(map[string]bool)
	for i, d := range scenario.MaliciousDomains() {
		if i%2 == 0 {
			known[d] = true
		}
	}

	rolling, err := maldomain.NewRolling(maldomain.StreamConfig{
		Start:      cfg.Start,
		WindowDays: 2,
		Detector:   maldomain.Config{Seed: 808, EmbedDim: 16},
		Labeler: func(candidates []string) ([]string, []int) {
			domains, labels := ti.LabeledSet(candidates)
			var outD []string
			var outL []int
			for j, d := range domains {
				if labels[j] == 1 && !known[d] {
					continue
				}
				outD = append(outD, d)
				outL = append(outL, labels[j])
			}
			return outD, outL
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d days of campus traffic...\n", cfg.Days)
	scenario.Generate(func(ev dnssim.Event) { rolling.Consume(maldomain.Observation(ev)) })

	totalAlerts, hits := 0, 0
	for day := 0; day < cfg.Days; day++ {
		alerts, err := rolling.EndOfDay(day)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nday %d: %d new alerts\n", day, len(alerts))
		for i, a := range alerts {
			truth, _ := scenario.Truth(a.Domain)
			tag := "(benign)"
			if truth.Malicious {
				tag = truth.Family
				hits++
			}
			totalAlerts++
			if i < 8 {
				fmt.Printf("  %-28s %+.3f  %s\n", a.Domain, a.Score, tag)
			}
		}
		if len(alerts) > 8 {
			fmt.Printf("  ... and %d more\n", len(alerts)-8)
		}
	}
	if totalAlerts > 0 {
		fmt.Printf("\nfeed precision over %d alerts: %.0f%%\n",
			totalAlerts, 100*float64(hits)/float64(totalAlerts))
	}
}

// Quickstart: the smallest complete use of the maldomain public API.
//
// It hand-crafts a toy DNS trace in which three hosts are infected by
// the same malware and repeatedly query a trio of C&C domains that share
// fast-flux addresses, while the rest of the hosts browse ordinary
// sites. The detector builds the bipartite graphs of the paper's §4
// (the structure sketched in Figure 3), learns embeddings, trains the
// SVM on a few labeled examples, and scores the remaining domains.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	maldomain "repro"
	"repro/internal/dnswire"
	"repro/internal/mathx"
	"repro/internal/svm"
)

func main() {
	start := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	det := maldomain.NewDetector(maldomain.Config{
		Start: start,
		Days:  2,
		Seed:  7,
		// The paper's C=0.09 is tuned for its >10,000-domain labeled set;
		// a six-example toy training set needs a less regularized margin.
		SVM: svm.Config{C: 2, Kernel: svm.RBF{Gamma: 0.3}},
	})

	rng := mathx.NewRNG(7)
	emit := func(t time.Time, host, qname string, ips ...string) {
		det.Consume(maldomain.Observation{
			Time:     t,
			TxnID:    uint16(rng.Intn(1 << 16)),
			ClientIP: host,
			QName:    qname,
			QType:    dnswire.TypeA,
			RCode:    dnswire.RCodeNoError,
			Answers:  ips,
			TTL:      300,
		})
	}

	// A benign catalog of 20 sites; each host browses its own subset so
	// no benign domain exceeds the >50%-of-hosts pruning threshold.
	benign := make(map[string][]string, 20)
	var benignNames []string
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("site-%c.com", 'a'+i)
		benign[name] = []string{fmt.Sprintf("93.10.0.%d", i+1)}
		benignNames = append(benignNames, name)
	}
	cnc := map[string][]string{
		"qlkjxzv.ws":  {"203.0.113.7", "203.0.113.8"},
		"rmwpqard.ws": {"203.0.113.8", "203.0.113.9"},
		"zznhkpo.ws":  {"203.0.113.7", "203.0.113.9"},
	}
	cncNames := keys(cnc)

	// 12 ordinary hosts each browse 6 of the 20 benign sites; hosts 0-2
	// are also infected and beacon to the C&C trio.
	for h := 0; h < 12; h++ {
		host := fmt.Sprintf("10.0.0.%d", h+1)
		mySites := append([]string(nil), benignNames...)
		rng.Shuffle(len(mySites), func(i, j int) { mySites[i], mySites[j] = mySites[j], mySites[i] })
		mySites = mySites[:6]
		for q := 0; q < 40; q++ {
			t := start.Add(time.Duration(rng.Intn(2*24*60)) * time.Minute)
			name := mySites[rng.Intn(len(mySites))]
			emit(t, host, "www."+name, benign[name]...)
		}
		if h < 3 {
			for q := 0; q < 30; q++ {
				t := start.Add(time.Duration(rng.Intn(2*24*60)) * time.Minute)
				name := cncNames[rng.Intn(len(cncNames))]
				emit(t, host, name, cnc[name]...)
			}
		}
	}

	if err := det.BuildModel(); err != nil {
		log.Fatal(err)
	}
	stats, err := det.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d devices, %d retained domains, %d/%d/%d projection edges\n",
		stats.Devices, stats.RetainedE2LDs,
		stats.ProjectionEdges[maldomain.ViewQuery],
		stats.ProjectionEdges[maldomain.ViewIP],
		stats.ProjectionEdges[maldomain.ViewTime])

	// Train on a partial labeling: two malicious seeds, three benign.
	clf, err := det.TrainClassifier(
		[]string{"qlkjxzv.ws", "rmwpqard.ws", "site-a.com", "site-b.com", "site-c.com", "site-d.com"},
		[]int{1, 1, 0, 0, 0, 0},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Score everything else; the held-out C&C domain should surface at
	// the top of the suspicion ranking. (Operating points live on the
	// ROC curve — §6.2 — so rank, not the raw sign, is the verdict.)
	domains, err := det.Domains()
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		domain string
		score  float64
	}
	var ranking []scored
	fmt.Println("\nscores (higher = more suspicious):")
	for _, d := range domains {
		if s, ok := clf.Score(d); ok {
			fmt.Printf("  %-16s %+.3f\n", d, s)
			ranking = append(ranking, scored{d, s})
		}
	}
	sort.Slice(ranking, func(i, j int) bool { return ranking[i].score > ranking[j].score })
	for rank, r := range ranking {
		if r.domain == "zznhkpo.ws" {
			fmt.Printf("\nheld-out C&C domain zznhkpo.ws ranks #%d of %d by suspicion\n",
				rank+1, len(ranking))
			if rank < 3 {
				fmt.Println("correctly surfaced at the top of the ranking")
			}
			break
		}
	}
}

func keys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Embedding explorer: what the learned feature space looks like (§7.3).
//
// It builds the behavioral model over simulated campus traffic, then
// examines the combined embedding space directly: nearest neighbors of a
// malicious and a benign domain by cosine similarity, and a t-SNE
// projection of several discovered clusters rendered as an ASCII scatter
// plot — a terminal rendition of the paper's Figure 5.
//
// Run with: go run ./examples/embedding-explorer
package main

import (
	"fmt"
	"log"
	"sort"

	maldomain "repro"
	"repro/internal/dnssim"
	"repro/internal/mathx"
	"repro/internal/tsne"
	"repro/internal/xmeans"
)

func main() {
	const seed = 314

	fmt.Println("building the behavioral model over simulated campus traffic...")
	scenario := dnssim.NewScenario(dnssim.SmallScenario(seed))
	det := maldomain.NewDetector(maldomain.Config{
		Start: scenario.Config.Start,
		Days:  scenario.Config.Days,
		DHCP:  scenario.DHCP(),
		Seed:  seed,
	})
	scenario.Generate(func(ev dnssim.Event) { det.Consume(maldomain.Observation(ev)) })
	if err := det.BuildModel(); err != nil {
		log.Fatal(err)
	}
	domains, err := det.Domains()
	if err != nil {
		log.Fatal(err)
	}

	// Pick one malicious and one benign probe and list nearest neighbors.
	var malProbe, benProbe string
	for _, d := range domains {
		l, ok := scenario.Truth(d)
		if !ok {
			continue
		}
		if l.Malicious && malProbe == "" {
			malProbe = d
		}
		if !l.Malicious && benProbe == "" && len(d) > 8 {
			benProbe = d
		}
		if malProbe != "" && benProbe != "" {
			break
		}
	}
	for _, probe := range []string{malProbe, benProbe} {
		truth, _ := scenario.Truth(probe)
		kind := "benign"
		if truth.Malicious {
			kind = "malicious / " + truth.Family
		}
		fmt.Printf("\nnearest neighbors of %s (%s):\n", probe, kind)
		for _, n := range nearest(det, domains, probe, 8) {
			nt, _ := scenario.Truth(n.domain)
			tag := "benign"
			if nt.Malicious {
				tag = nt.Family
			}
			fmt.Printf("  %-28s cos=%.3f  %s\n", n.domain, n.cos, tag)
		}
	}

	// Cluster and draw a Figure 5-style scatter of five clusters.
	res, kept, err := det.ClusterDomains(domains, xmeans.Config{KMin: 8, KMax: 48})
	if err != nil {
		log.Fatal(err)
	}
	members := res.Members()
	var chosen []int
	for c, m := range members {
		if len(m) >= 8 && len(m) <= 120 {
			chosen = append(chosen, c)
		}
		if len(chosen) == 5 {
			break
		}
	}
	var points [][]float64
	var classes []int
	for id, c := range chosen {
		for _, i := range members[c] {
			v, ok := det.FeatureVector(kept[i])
			if !ok {
				continue
			}
			points = append(points, v)
			classes = append(classes, id)
		}
	}
	fmt.Printf("\nt-SNE projection of %d domains from %d clusters:\n\n", len(points), len(chosen))
	layout, err := tsne.Embed(points, tsne.Config{Perplexity: 20, Iterations: 350, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tsne.ASCIIScatter(layout, classes, 22, 72))
}

type neighbor struct {
	domain string
	cos    float64
}

func nearest(det *maldomain.Detector, domains []string, probe string, k int) []neighbor {
	pv, ok := det.FeatureVector(probe)
	if !ok {
		return nil
	}
	var out []neighbor
	for _, d := range domains {
		if d == probe {
			continue
		}
		v, ok := det.FeatureVector(d)
		if !ok {
			continue
		}
		out = append(out, neighbor{d, cosine(pv, v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cos > out[j].cos })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func cosine(a, b []float64) float64 {
	na, nb := mathx.Norm(a), mathx.Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return mathx.Dot(a, b) / (na * nb)
}

// DGA hunting: cluster-expansion threat hunting (§7.2.1, Figure 4).
//
// Starting from a handful of confirmed malicious seed domains, the
// program clusters every retained domain by its combined behavioral
// embedding with X-Means, marks the clusters containing seeds, and
// triages their remaining members through the simulated VirusTotal
// confirmation rule — separating newly *confirmed* malicious domains
// from unconfirmed-but-suspicious ones, and reporting the discovered
// families.
//
// Run with: go run ./examples/dga-hunting
package main

import (
	"fmt"
	"log"
	"sort"

	maldomain "repro"
	"repro/internal/dnssim"
	"repro/internal/mathx"
	"repro/internal/threatintel"
	"repro/internal/xmeans"
)

func main() {
	const seed = 99

	fmt.Println("simulating campus traffic and building the behavioral model...")
	scenario := dnssim.NewScenario(dnssim.SmallScenario(seed))
	det := maldomain.NewDetector(maldomain.Config{
		Start: scenario.Config.Start,
		Days:  scenario.Config.Days,
		DHCP:  scenario.DHCP(),
		Seed:  seed,
	})
	scenario.Generate(func(ev dnssim.Event) { det.Consume(maldomain.Observation(ev)) })
	if err := det.BuildModel(); err != nil {
		log.Fatal(err)
	}
	ti := threatintel.NewService(scenario.TruthTable(), threatintel.Config{Seed: seed})

	retained, err := det.Domains()
	if err != nil {
		log.Fatal(err)
	}
	res, kept, err := det.ClusterDomains(retained, xmeans.Config{KMin: 8, KMax: 48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("X-Means grouped %d domains into %d clusters\n", len(kept), res.K)

	// Pick 10 random seeds among VT-confirmed malicious domains.
	var confirmed []string
	for _, d := range kept {
		if l, ok := scenario.Truth(d); ok && l.Malicious && ti.Validate(d) {
			confirmed = append(confirmed, d)
		}
	}
	sort.Strings(confirmed)
	rng := mathx.NewRNG(seed)
	rng.Shuffle(len(confirmed), func(i, j int) { confirmed[i], confirmed[j] = confirmed[j], confirmed[i] })
	seeds := confirmed[:10]
	fmt.Println("\nseed domains (known malicious):")
	for _, s := range seeds {
		fam, _, _ := ti.Family(s)
		fmt.Printf("  %-28s %s\n", s, fam)
	}

	seedSet := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		seedSet[s] = true
	}
	clusterOf := make(map[string]int, len(kept))
	for i, d := range kept {
		clusterOf[d] = res.Assign[i]
	}
	hot := make(map[int]bool)
	for _, s := range seeds {
		hot[clusterOf[s]] = true
	}

	newTrue, suspicious := 0, 0
	families := map[string]int{}
	var examples []string
	for i, d := range kept {
		if !hot[res.Assign[i]] || seedSet[d] {
			continue
		}
		if ti.Validate(d) {
			newTrue++
			if fam, _, ok := ti.Family(d); ok {
				families[fam]++
			}
			if len(examples) < 12 {
				examples = append(examples, d)
			}
		} else if l, ok := scenario.Truth(d); ok && l.Malicious {
			suspicious++
		}
	}
	fmt.Printf("\nexpansion from %d seeds across %d hot clusters:\n", len(seeds), len(hot))
	fmt.Printf("  newly confirmed malicious: %d\n", newTrue)
	fmt.Printf("  suspicious (unconfirmed):  %d\n", suspicious)
	fmt.Println("\ndiscovered families:")
	famNames := make([]string, 0, len(families))
	for fam := range families {
		famNames = append(famNames, fam)
	}
	sort.Strings(famNames)
	for _, fam := range famNames {
		fmt.Printf("  %-20s %d domains\n", fam, families[fam])
	}
	fmt.Println("\nsample discoveries:")
	sort.Strings(examples)
	for _, d := range examples {
		fmt.Printf("  %s\n", d)
	}
}
